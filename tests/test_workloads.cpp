/**
 * @file
 * Tests for the workload generators and harnesses: the cluster trace
 * distributions (property-checked per cluster via TEST_P), the MLC
 * injector, the iperf flow, and the NF harness.
 */

#include <gtest/gtest.h>

#include "net/Link.hh"
#include "workload/IperfFlow.hh"
#include "workload/MemLatencyProbe.hh"
#include "workload/MlcInjector.hh"
#include "workload/NfHarness.hh"
#include "workload/TraceGen.hh"

using namespace netdimm;

// ---------------------------------------------------------------------
// TraceGen distribution properties (Sec. 5.1's published mixes).
// ---------------------------------------------------------------------

class TraceGenTest : public ::testing::TestWithParam<ClusterType>
{
};

TEST_P(TraceGenTest, SizesWithinEthernetBounds)
{
    TraceGen gen(GetParam(), 10.0, 1);
    for (int i = 0; i < 5000; ++i) {
        TraceRecord r = gen.next();
        EXPECT_GE(r.bytes, 64u);
        EXPECT_LE(r.bytes, 1514u);
    }
}

TEST_P(TraceGenTest, InterArrivalMatchesOfferedLoad)
{
    TraceGen gen(GetParam(), 10.0, 2);
    double total_bytes = 0.0;
    double total_ns = 0.0;
    for (int i = 0; i < 20000; ++i) {
        TraceRecord r = gen.next();
        total_bytes += r.bytes;
        total_ns += ticksToNs(r.interArrival);
    }
    double gbps = total_bytes * 8.0 / total_ns;
    EXPECT_NEAR(gbps, 10.0, 1.5);
}

TEST_P(TraceGenTest, DeterministicForSeed)
{
    TraceGen a(GetParam(), 10.0, 7), b(GetParam(), 10.0, 7);
    for (int i = 0; i < 100; ++i) {
        TraceRecord ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.bytes, rb.bytes);
        EXPECT_EQ(ra.interArrival, rb.interArrival);
    }
}

INSTANTIATE_TEST_SUITE_P(AllClusters, TraceGenTest,
                         ::testing::Values(ClusterType::Database,
                                           ClusterType::Webserver,
                                           ClusterType::Hadoop),
                         [](const auto &info) {
                             return std::string(
                                 clusterName(info.param));
                         });

TEST(TraceGen, WebserverIsSmallPacketHeavy)
{
    TraceGen gen(ClusterType::Webserver, 10.0, 3);
    int small = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        small += (gen.next().bytes < 300);
    // Paper: ~90% below 300B.
    EXPECT_NEAR(double(small) / n, 0.90, 0.02);
}

TEST(TraceGen, HadoopIsBimodal)
{
    TraceGen gen(ClusterType::Hadoop, 10.0, 4);
    int tiny = 0, mtu = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        std::uint32_t b = gen.next().bytes;
        tiny += (b < 100);
        mtu += (b == 1514);
    }
    // Paper: ~41% < 100B and ~52% = 1514B.
    EXPECT_NEAR(double(tiny) / n, 0.41, 0.02);
    EXPECT_NEAR(double(mtu) / n, 0.52, 0.02);
}

TEST(TraceGen, DatabaseIsUniform)
{
    TraceGen gen(ClusterType::Database, 10.0, 5);
    stats::Average sizes;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sizes.sample(double(gen.next().bytes));
    EXPECT_NEAR(sizes.mean(), (64.0 + 1514.0) / 2.0, 25.0);
}

TEST(TraceGen, LocalityMatchesClusterCharacter)
{
    auto count = [](ClusterType c, TrafficLocality want) {
        TraceGen gen(c, 10.0, 6);
        int hits = 0;
        for (int i = 0; i < 10000; ++i)
            hits += (gen.next().locality == want);
        return double(hits) / 10000.0;
    };
    // Hadoop is intra-cluster, webserver intra-datacenter, database
    // has substantial inter-datacenter traffic.
    EXPECT_GT(count(ClusterType::Hadoop, TrafficLocality::IntraCluster),
              0.7);
    EXPECT_GT(count(ClusterType::Webserver,
                    TrafficLocality::IntraDatacenter),
              0.7);
    EXPECT_GT(count(ClusterType::Database,
                    TrafficLocality::InterDatacenter),
              0.3);
}

// ---------------------------------------------------------------------
// MlcInjector.
// ---------------------------------------------------------------------

TEST(MlcInjector, GeneratesLoadAndStops)
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = NicKind::Integrated;
    EventQueue eq;
    Node node(eq, "n", cfg, 0);
    MlcInjector mlc(eq, "mlc", node, nsToTicks(0), 1024, 16);
    mlc.start();
    eq.run(usToTicks(50));
    mlc.stop();
    eq.run();
    EXPECT_GT(mlc.issued(), 1000u);
    EXPECT_GT(mlc.achievedGBps(), 2.0);
}

TEST(MlcInjector, DelayThrottlesLoad)
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = NicKind::Integrated;

    auto run = [&](double delay_ns) {
        EventQueue eq;
        Node node(eq, "n", cfg, 0);
        MlcInjector mlc(eq, "mlc", node, nsToTicks(delay_ns), 1024, 16);
        mlc.start();
        eq.run(usToTicks(50));
        return mlc.achievedGBps();
    };
    double fast = run(0);
    double slow = run(500);
    EXPECT_GT(fast, 3.0 * slow);
    // 500ns spacing -> 2 x 64B per 500ns = 0.256 GB/s.
    EXPECT_NEAR(slow, 0.256, 0.05);
}

TEST(MlcInjector, RaisesObservedMemoryLatency)
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = NicKind::Integrated;

    auto probe_lat = [&](bool pressured) {
        EventQueue eq;
        Node node(eq, "n", cfg, 0);
        MemLatencyProbe probe(eq, "p", node, nsToTicks(20), 8192);
        std::vector<std::unique_ptr<MlcInjector>> mlcs;
        if (pressured) {
            for (int i = 0; i < 4; ++i) {
                mlcs.push_back(std::make_unique<MlcInjector>(
                    eq, "mlc" + std::to_string(i), node, 0, 2048, 32));
                mlcs.back()->start();
            }
        }
        probe.start();
        eq.run(usToTicks(100));
        return probe.meanLatencyNs();
    };
    double idle = probe_lat(false);
    double loaded = probe_lat(true);
    EXPECT_GT(loaded, 1.3 * idle);
}

// ---------------------------------------------------------------------
// IperfFlow.
// ---------------------------------------------------------------------

TEST(IperfFlow, ReachesHighGoodputOnCleanLink)
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = NicKind::Integrated;
    EventQueue eq;
    Node tx(eq, "tx", cfg, 0);
    Node rx(eq, "rx", cfg, 1);
    EthLink link(eq, "l", cfg.eth);
    link.connect(tx.endpoint(), rx.endpoint());
    tx.connectTo(link);
    rx.connectTo(link);

    IperfFlow flow(eq, "f", tx, rx, 1460, 64, 4);
    flow.start();
    eq.run(usToTicks(200));
    EXPECT_GT(flow.goodputGbps(), 30.0);
    EXPECT_GT(flow.deliveredSegments(), 500u);
}

TEST(IperfFlow, WindowBoundsInFlight)
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = NicKind::Integrated;
    EventQueue eq;
    Node tx(eq, "tx", cfg, 0);
    Node rx(eq, "rx", cfg, 1);
    EthLink link(eq, "l", cfg.eth);
    link.connect(tx.endpoint(), rx.endpoint());
    tx.connectTo(link);
    rx.connectTo(link);

    // A window of 2 on a ~3us round trip cannot exceed ~2 segments
    // per RTT.
    IperfFlow flow(eq, "f", tx, rx, 1460, 2, 1);
    flow.start();
    eq.run(usToTicks(200));
    double rtt_bound = 2.0 * 1460.0 * 8.0 / 2.5e3; // 2 seg / 2.5us, Gbps
    EXPECT_LT(flow.goodputGbps(), rtt_bound * 1.5);
    EXPECT_GT(flow.deliveredSegments(), 50u);
}

// ---------------------------------------------------------------------
// NfHarness.
// ---------------------------------------------------------------------

class NfHarnessTest
    : public ::testing::TestWithParam<std::pair<NicKind, NfKind>>
{
};

TEST_P(NfHarnessTest, ForwardsEveryPacket)
{
    setQuiet(true);
    auto [kind, nf] = GetParam();
    SystemConfig cfg;
    cfg.nic = kind;
    EventQueue eq;
    Node gen(eq, "gen", cfg, 0);
    Node nut(eq, "nut", cfg, 1);
    EthLink link(eq, "l", cfg.eth);
    link.connect(gen.endpoint(), nut.endpoint());
    gen.connectTo(link);
    nut.connectTo(link);

    NfHarness harness(eq, "nf", nut, nf);
    const int n = 40;
    for (int i = 0; i < n; ++i) {
        eq.schedule(usToTicks(2) * Tick(i + 1), [&gen, &nut, i] {
            gen.sendPacket(
                gen.makeTxPacket(1000, nut.id(), 1 + (i % 4)));
        });
    }
    eq.run();
    EXPECT_EQ(harness.processed(), unsigned(n));
    EXPECT_EQ(harness.forwarded(), unsigned(n));
    EXPECT_GT(harness.meanProcessNs(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, NfHarnessTest,
    ::testing::Values(
        std::make_pair(NicKind::Integrated, NfKind::L3Forward),
        std::make_pair(NicKind::Integrated, NfKind::DeepInspect),
        std::make_pair(NicKind::NetDimm, NfKind::L3Forward),
        std::make_pair(NicKind::NetDimm, NfKind::DeepInspect)),
    [](const auto &info) {
        std::string n = nicKindName(info.param.first);
        n += "_";
        n += nfKindName(info.param.second);
        for (auto &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

TEST(NfHarness, DpiReadsMoreThanL3f)
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = NicKind::NetDimm;

    auto host_reads = [&](NfKind nf) {
        EventQueue eq;
        Node gen(eq, "gen", cfg, 0);
        Node nut(eq, "nut", cfg, 1);
        EthLink link(eq, "l", cfg.eth);
        link.connect(gen.endpoint(), nut.endpoint());
        gen.connectTo(link);
        nut.connectTo(link);
        NfHarness harness(eq, "nf", nut, nf);
        for (int i = 0; i < 20; ++i) {
            eq.schedule(usToTicks(3) * Tick(i + 1), [&gen, &nut, i] {
                gen.sendPacket(
                    gen.makeTxPacket(1460, nut.id(), 1 + (i % 4)));
            });
        }
        eq.run();
        return nut.netdimm()->hostReads();
    };
    // DPI pulls the payload across the host channel; L3F only the
    // header + descriptor lines.
    EXPECT_GT(host_reads(NfKind::DeepInspect),
              2 * host_reads(NfKind::L3Forward));
}
