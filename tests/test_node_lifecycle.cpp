/**
 * @file
 * Whole-node crash/restart tests (DESIGN.md §15): a crash drops the
 * link and everything in flight, a restart cold-boots the device and
 * replays the workload hook, the NodeLifecycle scheduler closes its
 * fault ledger, and a zero-rate lifecycle is draw-free.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernel/Node.hh"
#include "kernel/NodeLifecycle.hh"
#include "net/Link.hh"

using namespace netdimm;

namespace
{

SystemConfig
quietCfg()
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = NicKind::NetDimm;
    cfg.faults.enabled = true;
    return cfg;
}

/** Client + server over one link; client pings on demand. */
struct Pair
{
    EventQueue eq;
    SystemConfig cfg;
    std::unique_ptr<Node> client, server;
    std::unique_ptr<EthLink> link;
    std::uint64_t delivered = 0;

    explicit Pair(const SystemConfig &c) : cfg(c)
    {
        client = std::make_unique<Node>(eq, "client", cfg, 0);
        server = std::make_unique<Node>(eq, "server", cfg, 1);
        link = std::make_unique<EthLink>(eq, "link", cfg.eth);
        link->connect(client->endpoint(), server->endpoint());
        client->connectTo(*link);
        server->connectTo(*link);
        server->setReceiveHandler(
            [this](const PacketPtr &, Tick) { ++delivered; });
    }

    void
    ping()
    {
        PacketPtr p = client->makeTxPacket(256, server->id());
        client->sendPacket(p);
    }
};

} // namespace

TEST(NodeLifecycle, CrashDropsTrafficRestartResumes)
{
    Pair s(quietCfg());

    // Healthy baseline.
    s.eq.schedule(usToTicks(1), [&] { s.ping(); });
    // Crash at 20us; pings at 25/30us land on a dead node (the link
    // is down, sends are dropped on the floor, nothing wedges).
    s.eq.schedule(usToTicks(20), [&] { s.server->crash(); });
    s.eq.schedule(usToTicks(25), [&] { s.ping(); });
    s.eq.schedule(usToTicks(30), [&] { s.ping(); });
    // Restart at 60us; a later ping delivers again.
    s.eq.schedule(usToTicks(60), [&] { s.server->restart(); });
    s.eq.schedule(usToTicks(80), [&] { s.ping(); });
    s.eq.run();

    EXPECT_EQ(s.delivered, 2u); // baseline + post-restart only
    EXPECT_TRUE(s.server->alive());
    EXPECT_EQ(s.server->bootGen(), 1u);
    EXPECT_EQ(s.server->crashesInjected(), 1u);
    EXPECT_EQ(s.server->restarts(), 1u);
}

TEST(NodeLifecycle, CrashWipesDeviceStateAndColdBootHookReplays)
{
    SystemConfig cfg = quietCfg();
    cfg.handler.enabled = true;
    Pair s(cfg);

    HandlerStage *hs = s.server->netdimm()->handlers();
    ASSERT_NE(hs, nullptr);
    hs->configureKv(1u << 10, 1u << 10, 128);
    hs->table().add(MatchRule::onOp(RpcOp::Get, "kv"));
    ASSERT_FALSE(hs->table().empty());

    int hookRuns = 0;
    s.server->setColdBootHook([&] {
        ++hookRuns;
        HandlerStage *h = s.server->netdimm()->handlers();
        h->configureKv(1u << 10, 1u << 10, 128);
        h->table().add(MatchRule::onOp(RpcOp::Get, "kv"));
    });

    // Prime the nCache with one delivered frame, then crash.
    s.eq.schedule(usToTicks(1), [&] { s.ping(); });
    s.eq.schedule(usToTicks(20), [&] { s.server->crash(); });
    s.eq.run();

    // Power-fail semantics: match table gone, nCache empty.
    EXPECT_TRUE(hs->table().empty());
    EXPECT_EQ(s.server->netdimm()->ncache().occupancy(), 0u);
    EXPECT_FALSE(s.server->alive());
    EXPECT_EQ(hookRuns, 0);

    s.server->restart();
    EXPECT_EQ(hookRuns, 1);
    EXPECT_FALSE(hs->table().empty()); // hook reinstalled the rule

    // And the rebooted node serves traffic again.
    s.eq.schedule(s.eq.curTick() + usToTicks(5), [&] { s.ping(); });
    s.eq.run();
    EXPECT_EQ(s.delivered, 2u);
}

TEST(NodeLifecycle, RatedScheduleClosesItsLedger)
{
    SystemConfig cfg = quietCfg();
    Pair s(cfg);
    FaultDomain &dom = s.server->faults()->domain("server.crash");

    NodeLifecycle::Params lp;
    lp.crashRatePerSec = 3e5; // ~3.3us mean gap: several crashes
    lp.restartDelay = usToTicks(2);
    lp.windowEnd = usToTicks(100);
    NodeLifecycle life(s.eq, *s.server, dom, lp);
    life.start();
    s.eq.run();

    EXPECT_GT(dom.injected(), 0u);
    EXPECT_TRUE(dom.ledgerClosed())
        << dom.injected() << "/" << dom.recovered();
    EXPECT_EQ(s.server->crashesInjected(), s.server->restarts());
    EXPECT_TRUE(s.server->alive()); // every crash booked its reboot
    EXPECT_FALSE(life.down());
}

TEST(NodeLifecycle, GateDefersButNeverDropsACrash)
{
    SystemConfig cfg = quietCfg();
    Pair s(cfg);
    FaultDomain &dom = s.server->faults()->domain("server.crash");

    NodeLifecycle::Params lp;
    lp.crashRatePerSec = 2e5;
    lp.restartDelay = usToTicks(2);
    lp.windowEnd = usToTicks(60);
    lp.deferPeriod = usToTicks(1);
    NodeLifecycle life(s.eq, *s.server, dom, lp);
    // Gate closed for the first 30us: crashes due in that window must
    // defer past it, not vanish.
    life.setGate([&] { return s.eq.curTick() >= usToTicks(30); });
    std::uint64_t drawsBefore = dom.decisions();
    life.start();
    s.eq.run();

    EXPECT_TRUE(dom.ledgerClosed());
    // One draw per scheduled crash attempt: deferral consumed none.
    // The final draw lands past windowEnd and schedules nothing.
    EXPECT_EQ(dom.decisions() - drawsBefore, dom.injected() + 1);
}

TEST(NodeLifecycle, ZeroRateIsDrawFreeAndInert)
{
    SystemConfig cfg = quietCfg();
    Pair s(cfg);
    FaultDomain &dom = s.server->faults()->domain("server.crash");

    NodeLifecycle::Params lp; // crashRatePerSec = 0
    NodeLifecycle life(s.eq, *s.server, dom, lp);
    life.start();
    s.eq.schedule(usToTicks(1), [&] { s.ping(); });
    s.eq.run();

    EXPECT_EQ(dom.decisions(), 0u);
    EXPECT_EQ(dom.injected(), 0u);
    EXPECT_EQ(s.delivered, 1u);
}

TEST(NodeLifecycle, CrashNowFollowsTheNormalRestartPath)
{
    SystemConfig cfg = quietCfg();
    Pair s(cfg);
    FaultDomain &dom = s.server->faults()->domain("server.crash");

    NodeLifecycle::Params lp;
    lp.restartDelay = usToTicks(10);
    NodeLifecycle life(s.eq, *s.server, dom, lp);

    int crashHook = 0, restartHook = 0;
    life.setOnCrash([&] { ++crashHook; });
    life.setOnRestart([&] { ++restartHook; });

    s.eq.schedule(usToTicks(5), [&] { life.crashNow(); });
    s.eq.schedule(usToTicks(7), [&] {
        EXPECT_TRUE(life.down());
        EXPECT_FALSE(s.server->alive());
    });
    s.eq.run();

    EXPECT_EQ(crashHook, 1);
    EXPECT_EQ(restartHook, 1);
    EXPECT_TRUE(s.server->alive());
    EXPECT_TRUE(dom.ledgerClosed());
    EXPECT_EQ(dom.injected(), 1u);
    EXPECT_EQ(dom.decisions(), 0u); // zero-rate: deterministic crash
}
