/**
 * @file
 * Unit tests for the circular descriptor ring.
 */

#include <gtest/gtest.h>

#include "nic/DescriptorRing.hh"

using namespace netdimm;

TEST(DescriptorRing, InitialState)
{
    DescriptorRing ring;
    ring.init(0x1000, 8);
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.full());
    EXPECT_EQ(ring.occupancy(), 0u);
    EXPECT_EQ(ring.base(), 0x1000u);
    EXPECT_EQ(ring.entries(), 8u);
}

TEST(DescriptorRing, DescriptorAddressesAre16BApart)
{
    DescriptorRing ring;
    ring.init(0x1000, 8);
    EXPECT_EQ(ring.descAddr(0), 0x1000u);
    EXPECT_EQ(ring.descAddr(1), 0x1010u);
    EXPECT_EQ(ring.descAddr(7), 0x1070u);
    // Indices wrap.
    EXPECT_EQ(ring.descAddr(8), 0x1000u);
}

TEST(DescriptorRing, PushPopFifoOrder)
{
    DescriptorRing ring;
    ring.init(0, 8);
    for (Addr a = 100; a < 105; ++a)
        ring.push(a);
    EXPECT_EQ(ring.occupancy(), 5u);
    EXPECT_EQ(ring.peek(), 100u);
    for (Addr a = 100; a < 105; ++a)
        EXPECT_EQ(ring.pop(), a);
    EXPECT_TRUE(ring.empty());
}

TEST(DescriptorRing, FullLeavesOneSlotFree)
{
    DescriptorRing ring;
    ring.init(0, 4);
    ring.push(1);
    ring.push(2);
    ring.push(3);
    EXPECT_TRUE(ring.full()); // capacity - 1 usable, e1000-style
}

TEST(DescriptorRing, WrapsAroundManyTimes)
{
    DescriptorRing ring;
    ring.init(0, 4);
    for (Addr i = 0; i < 100; ++i) {
        ring.push(i);
        EXPECT_EQ(ring.pop(), i);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(DescriptorRing, PushReturnsSlotIndex)
{
    DescriptorRing ring;
    ring.init(0, 4);
    EXPECT_EQ(ring.push(10), 0u);
    EXPECT_EQ(ring.push(11), 1u);
    ring.pop();
    EXPECT_EQ(ring.push(12), 2u);
}

TEST(DescriptorRingDeath, PopEmptyAsserts)
{
    DescriptorRing ring;
    ring.init(0, 4);
    EXPECT_DEATH(ring.pop(), "empty");
}

TEST(DescriptorRingDeath, PushFullAsserts)
{
    DescriptorRing ring;
    ring.init(0, 2);
    ring.push(1);
    EXPECT_DEATH(ring.push(2), "full");
}
