/**
 * @file
 * Unit tests for allocCache (Sec. 4.2.2): prefill sizing (32K pages
 * for the two-rank reference NetDIMM), O(1) same-sub-array hits,
 * exhaustion fallback and background refill.
 */

#include <gtest/gtest.h>

#include "kernel/AllocCache.hh"

using namespace netdimm;

namespace
{
DramGeometry
localGeo()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 2;
    return g;
}

constexpr Addr regionBase = 1ull << 32;

struct Fixture
{
    EventQueue eq;
    NetdimmZoneAllocator zone;
    AllocCache cache;

    explicit Fixture(std::uint32_t per_sa = 2)
        : zone(regionBase, localGeo()),
          cache(eq, "ac", zone, per_sa)
    {}
};
} // namespace

TEST(AllocCache, PrefillMatchesPaper)
{
    Fixture f;
    // 2 ranks x 8K sub-arrays x 2 pages = 32K pages = 128MB.
    EXPECT_EQ(f.cache.cachedPages(), 32u * 1024u);
}

TEST(AllocCache, HintedTakeIsFastAndSameSubArray)
{
    Fixture f;
    bool fast = false;
    Addr hint = f.cache.takeAny(fast);
    ASSERT_TRUE(fast);
    Addr page = f.cache.take(hint, fast);
    EXPECT_TRUE(fast);
    EXPECT_TRUE(f.zone.sameSubArray(hint, page));
    EXPECT_EQ(f.cache.fastHits(), 2u);
}

TEST(AllocCache, ExhaustedSubArrayFallsBackSlow)
{
    Fixture f;
    bool fast = false;
    Addr hint = f.cache.takeAny(fast);
    // Drain the remaining cached page of that sub-array.
    f.cache.take(hint, fast);
    ASSERT_TRUE(fast);
    // Third take from the same sub-array misses the cache.
    f.cache.take(hint, fast);
    EXPECT_FALSE(fast);
    EXPECT_EQ(f.cache.slowAllocs(), 1u);
}

TEST(AllocCache, BackgroundRefillReplenishes)
{
    Fixture f;
    bool fast = false;
    Addr hint = f.cache.takeAny(fast);
    f.cache.take(hint, fast);
    std::uint64_t after_takes = f.cache.cachedPages();
    // Let the background refill run.
    f.eq.run();
    EXPECT_GT(f.cache.cachedPages(), after_takes);
}

TEST(AllocCache, ReleaseReturnsToCacheUpToCap)
{
    Fixture f;
    bool fast = false;
    Addr p = f.cache.takeAny(fast);
    std::uint64_t n = f.cache.cachedPages();
    f.cache.release(p);
    EXPECT_EQ(f.cache.cachedPages(), n + 1);
    // Releasing beyond the per-sub-array cap frees to the zone.
    std::uint64_t zone_free = f.zone.freePages();
    Addr q = f.zone.allocPage(p);
    f.cache.release(q); // cache already holds 2 for this sub-array
    EXPECT_EQ(f.cache.cachedPages(), n + 1);
    EXPECT_EQ(f.zone.freePages(), zone_free);
}

TEST(AllocCache, TakeAnyDistributes)
{
    Fixture f;
    bool fast = false;
    Addr a = f.cache.takeAny(fast);
    Addr b = f.cache.takeAny(fast);
    EXPECT_NE(a, b);
    EXPECT_FALSE(f.zone.sameSubArray(a, b));
}

TEST(AllocCache, ManyTakesAllSucceed)
{
    Fixture f;
    std::set<Addr> seen;
    bool fast = false;
    for (int i = 0; i < 5000; ++i) {
        Addr p = f.cache.takeAny(fast);
        EXPECT_TRUE(seen.insert(p).second);
    }
}
