/**
 * @file
 * Unit tests for the DDR memory controller model: idle latency, row
 * buffer behaviour, bandwidth ceiling, bus reservation and bank
 * occupation (the RowClone hooks), and per-source accounting.
 */

#include <gtest/gtest.h>

#include "mem/MemoryController.hh"

using namespace netdimm;

namespace
{

struct Fixture
{
    EventQueue eq;
    SystemConfig cfg;
    MemoryController mc;

    Fixture()
        : mc(eq, "mc", cfg.dram, perChannel(cfg.hostMem), cfg.memCtrl)
    {}

    static DramGeometry
    perChannel(DramGeometry g)
    {
        g.channels = 1;
        return g;
    }

    Tick
    blockingRead(Addr addr, std::uint32_t size = 64)
    {
        Tick done = 0;
        auto req = makeMemRequest(addr, size, false, MemSource::HostCpu,
                                  [&](Tick t) { done = t; });
        mc.access(req);
        eq.run();
        return done;
    }
};

} // namespace

TEST(MemoryController, IdleReadLatencyMatchesAnalytic)
{
    Fixture f;
    Tick done = f.blockingRead(0);
    EXPECT_EQ(done, f.mc.idleReadLatency());
    // DDR4-2400: ~10ns FE + (17+17+4)*0.833 + 6ns BE ~= 47ns.
    EXPECT_NEAR(ticksToNs(done), 47.0, 3.0);
}

TEST(MemoryController, RowHitIsFasterThanRowMiss)
{
    Fixture f;
    Tick first = f.blockingRead(0); // opens the row
    Tick t0 = f.eq.curTick();
    Tick hit = f.blockingRead(64) - t0; // same row
    // A far-away address in the same bank needs precharge+activate.
    // Same (bank, sub-array) repeats every 128KB; the next page slot
    // within the sub-array is a different row.
    Tick t1 = f.eq.curTick();
    Tick miss = f.blockingRead(128 * 1024) - t1;
    EXPECT_LT(hit, first);
    EXPECT_GT(miss, hit);
    EXPECT_GE(f.mc.rowHits(), 1u);
    EXPECT_GE(f.mc.rowMisses(), 2u);
}

TEST(MemoryController, StreamingSaturatesNearChannelBandwidth)
{
    Fixture f;
    // Issue 4MB of sequential reads in one shot.
    const std::uint32_t req_size = 4096;
    const int nreq = 1024;
    Tick last = 0;
    int done = 0;
    for (int i = 0; i < nreq; ++i) {
        auto req = makeMemRequest(Addr(i) * req_size, req_size, false,
                                  MemSource::HostCpu, [&](Tick t) {
                                      last = std::max(last, t);
                                      ++done;
                                  });
        f.mc.access(req);
    }
    f.eq.run();
    EXPECT_EQ(done, nreq);
    double secs = ticksToSec(last);
    double gbps = double(nreq) * req_size / secs / 1e9;
    // DDR4-2400 channel peak = 19.2 GB/s; expect well over half of
    // it and never above it.
    EXPECT_GT(gbps, 10.0);
    EXPECT_LE(gbps, 19.3);
    EXPECT_GT(f.mc.busUtilization(), 0.5);
}

TEST(MemoryController, MultiBeatRequestCompletesOnce)
{
    Fixture f;
    int completions = 0;
    auto req = makeMemRequest(0, 1024, false, MemSource::HostCpu,
                              [&](Tick) { ++completions; });
    f.mc.access(req);
    f.eq.run();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(f.mc.beatsServiced(), 16u);
}

TEST(MemoryController, ReserveBusDelaysSubsequentAccesses)
{
    Fixture f;
    Tick hold = nsToTicks(500);
    Tick slot = f.mc.reserveBus(0, hold);
    EXPECT_EQ(slot, 0u);
    Tick done = f.blockingRead(0);
    EXPECT_GE(done, hold);
}

TEST(MemoryController, ReserveBusSlotsAreExclusive)
{
    Fixture f;
    Tick s1 = f.mc.reserveBus(0, 100);
    Tick s2 = f.mc.reserveBus(0, 100);
    EXPECT_GE(s2, s1 + 100);
}

TEST(MemoryController, OccupyBankBlocksThatBankOnly)
{
    Fixture f;
    Tick until = nsToTicks(1000);
    DramAddress da0 = f.mc.decoder().decode(0);
    f.mc.occupyBank(da0.rank, da0.bank, until);

    Tick done_blocked = f.blockingRead(0);
    EXPECT_GT(done_blocked, until);

    // A different bank is unaffected. Consecutive pages land on
    // different banks under the Fig. 9 striping.
    DramAddress da1 = f.mc.decoder().decode(pageBytes);
    ASSERT_FALSE(da0.sameBank(da1));
    Tick t0 = f.eq.curTick();
    Tick done_free = f.blockingRead(pageBytes);
    EXPECT_LT(done_free - t0, until);
}

TEST(MemoryController, SourceStatsSeparateReadsAndWrites)
{
    Fixture f;
    auto rd = makeMemRequest(0, 64, false, MemSource::HostCpu, nullptr);
    auto wr =
        makeMemRequest(4096, 128, true, MemSource::NetDimmNic, nullptr);
    f.mc.access(rd);
    f.mc.access(wr);
    f.eq.run();
    EXPECT_EQ(f.mc.sourceStats(MemSource::HostCpu).bytesRead.value(),
              64u);
    EXPECT_EQ(
        f.mc.sourceStats(MemSource::NetDimmNic).bytesWritten.value(),
        128u);
    EXPECT_EQ(f.mc.sourceStats(MemSource::HostDma).bytesRead.value(),
              0u);
    EXPECT_GT(f.mc.meanReadLatencyNs(), 0.0);
}

TEST(MemoryController, TraceHookSeesEveryBeat)
{
    Fixture f;
    std::vector<Addr> lines;
    f.mc.setTraceHook([&](Tick, Addr a, bool w, MemSource) {
        EXPECT_FALSE(w);
        lines.push_back(a);
    });
    auto req = makeMemRequest(0, 256, false, MemSource::HostDma, nullptr);
    f.mc.access(req);
    f.eq.run();
    ASSERT_EQ(lines.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(lines[std::size_t(i)], Addr(i) * 64);
}

TEST(MemoryController, WritesEventuallyComplete)
{
    Fixture f;
    int done = 0;
    for (int i = 0; i < 100; ++i) {
        auto wr = makeMemRequest(Addr(i) * 64, 64, true,
                                 MemSource::HostCpu,
                                 [&](Tick) { ++done; });
        f.mc.access(wr);
    }
    f.eq.run();
    EXPECT_EQ(done, 100);
}

TEST(MemoryController, LatencyGrowsUnderLoad)
{
    Fixture f;
    // Measure a lone read.
    Tick lone = f.blockingRead(0);

    // Now pile up a large burst and measure a read behind it.
    for (int i = 0; i < 256; ++i) {
        auto req = makeMemRequest(Addr(i) * 4096, 4096, false,
                                  MemSource::HostDma, nullptr);
        f.mc.access(req);
    }
    Tick t0 = f.eq.curTick();
    Tick loaded = f.blockingRead(64) - t0;
    EXPECT_GT(loaded, lone);
}
