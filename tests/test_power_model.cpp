/**
 * @file
 * Unit tests for the energy accounting model.
 */

#include <gtest/gtest.h>

#include "sim/PowerModel.hh"

using namespace netdimm;

TEST(EnergyAccount, StartsEmpty)
{
    EnergyAccount a;
    EXPECT_DOUBLE_EQ(a.totalPj(), 0.0);
    EXPECT_DOUBLE_EQ(a.averageWatts(1.0), 0.0);
}

TEST(EnergyAccount, AccumulatesPerCategory)
{
    EnergyParams p;
    EnergyAccount a(p);
    a.dramBeats(10);
    a.channelBeats(5);
    a.pcieBytes(100);
    a.sramLines(3);
    a.fpmRows(2);
    a.cloneLines(4);
    a.wireBytes(200);
    a.cpuCycles(1000);

    EXPECT_DOUBLE_EQ(a.dramPj(), 10 * p.dramBeatPj);
    EXPECT_DOUBLE_EQ(a.channelPj(), 5 * p.channelBeatPj);
    EXPECT_DOUBLE_EQ(a.pciePj(), 100 * p.pciePerBytePj);
    EXPECT_DOUBLE_EQ(a.sramPj(), 3 * p.sramLinePj);
    EXPECT_DOUBLE_EQ(a.clonePj(),
                     2 * p.fpmRowPj + 4 * p.cloneLinePj);
    EXPECT_DOUBLE_EQ(a.wirePj(), 200 * p.wirePerBytePj);
    EXPECT_DOUBLE_EQ(a.cpuPj(), 1000 * p.cpuCyclePj);

    double sum = a.dramPj() + a.channelPj() + a.pciePj() + a.sramPj() +
                 a.clonePj() + a.wirePj() + a.cpuPj();
    EXPECT_DOUBLE_EQ(a.totalPj(), sum);
}

TEST(EnergyAccount, AverageWattsConversion)
{
    EnergyAccount a;
    a.wireBytes(1000000); // 1e6 B * 80 pJ/B = 8e7 pJ = 8e-5 J
    EXPECT_NEAR(a.averageWatts(1.0), 8e-5, 1e-9);
    EXPECT_NEAR(a.averageWatts(0.001), 8e-2, 1e-6);
    EXPECT_DOUBLE_EQ(a.averageWatts(0.0), 0.0);
}

TEST(EnergyAccount, FpmCheaperThanLineCloneForFullRows)
{
    // RowClone's selling point: copying a 1KB row by two activations
    // costs less than moving its 16 lines over any bus.
    EnergyParams p;
    double fpm = p.fpmRowPj;
    double psm = 16 * p.cloneLinePj;
    double cpu = 2 * 16 * p.dramBeatPj; // read + write via CPU
    EXPECT_LT(fpm, psm);
    EXPECT_LT(psm, cpu);
}
