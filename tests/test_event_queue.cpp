/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/EventQueue.hh"

using namespace netdimm;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pendingEvents(), 0u);
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickRunsInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, PriorityOrdersWithinTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, EventPriority::Stats);
    eq.schedule(5, [&] { order.push_back(1); }, EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); },
                EventPriority::Maintenance);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleRelIsRelativeToNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleRel(50, [&] { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    bool ran = false;
    auto h = eq.schedule(10, [&] { ran = true; });
    eq.deschedule(h);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, DescheduleExecutedEventIsNoOp)
{
    EventQueue eq;
    int runs = 0;
    auto h = eq.schedule(10, [&] { ++runs; });
    eq.schedule(20, [&] { ++runs; });
    EXPECT_TRUE(eq.step());
    eq.deschedule(h); // already ran
    EXPECT_EQ(eq.pendingEvents(), 1u);
    eq.run();
    EXPECT_EQ(runs, 2);
}

TEST(EventQueue, RunLimitStopsBeforeLaterEvents)
{
    EventQueue eq;
    int runs = 0;
    eq.schedule(10, [&] { ++runs; });
    eq.schedule(20, [&] { ++runs; });
    eq.schedule(30, [&] { ++runs; });
    EXPECT_EQ(eq.run(20), 2u);
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(eq.pendingEvents(), 1u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(runs, 3);
}

TEST(EventQueue, EventsScheduledDuringRunExecute)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.scheduleRel(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.curTick(), 9u);
    EXPECT_EQ(eq.executedEvents(), 10u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int runs = 0;
    eq.schedule(1, [&] { ++runs; });
    eq.schedule(2, [&] { ++runs; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(runs, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}
