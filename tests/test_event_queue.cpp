/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/EventQueue.hh"

using namespace netdimm;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pendingEvents(), 0u);
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickRunsInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, PriorityOrdersWithinTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, EventPriority::Stats);
    eq.schedule(5, [&] { order.push_back(1); }, EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); },
                EventPriority::Maintenance);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleRelIsRelativeToNow)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleRel(50, [&] { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue eq;
    bool ran = false;
    auto h = eq.schedule(10, [&] { ran = true; });
    eq.deschedule(h);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, DescheduleExecutedEventIsNoOp)
{
    EventQueue eq;
    int runs = 0;
    auto h = eq.schedule(10, [&] { ++runs; });
    eq.schedule(20, [&] { ++runs; });
    EXPECT_TRUE(eq.step());
    eq.deschedule(h); // already ran
    EXPECT_EQ(eq.pendingEvents(), 1u);
    eq.run();
    EXPECT_EQ(runs, 2);
}

TEST(EventQueue, RunLimitStopsBeforeLaterEvents)
{
    EventQueue eq;
    int runs = 0;
    eq.schedule(10, [&] { ++runs; });
    eq.schedule(20, [&] { ++runs; });
    eq.schedule(30, [&] { ++runs; });
    EXPECT_EQ(eq.run(20), 2u);
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(eq.pendingEvents(), 1u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(runs, 3);
}

TEST(EventQueue, EventsScheduledDuringRunExecute)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.scheduleRel(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.curTick(), 9u);
    EXPECT_EQ(eq.executedEvents(), 10u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int runs = 0;
    eq.schedule(1, [&] { ++runs; });
    eq.schedule(2, [&] { ++runs; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(runs, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, StaleHandleCannotCancelRecycledSlot)
{
    EventQueue eq;
    bool first = false, second = false;
    auto h1 = eq.schedule(10, [&] { first = true; });
    eq.deschedule(h1); // frees the slot, bumps its generation
    auto h2 = eq.schedule(20, [&] { second = true; });
    // The free list is LIFO, so the new event reuses the same slot
    // index under a new generation; the stale handle must not be
    // able to cancel the slot's new tenant.
    EXPECT_EQ(std::uint32_t(h1), std::uint32_t(h2));
    EXPECT_NE(h1, h2);
    eq.deschedule(h1);
    EXPECT_EQ(eq.pendingEvents(), 1u);
    eq.run();
    EXPECT_FALSE(first);
    EXPECT_TRUE(second);
}

TEST(EventQueue, SameTickOrderSurvivesHeavyDeschedule)
{
    EventQueue eq;
    std::vector<int> order;
    std::vector<std::uint64_t> doomed;
    // Interleave keepers and victims at one tick, then cancel every
    // victim: the keepers must still run in insertion order even
    // though the heap is full of dead entries between them.
    for (int i = 0; i < 64; ++i) {
        eq.schedule(5, [&order, i] { order.push_back(i); });
        doomed.push_back(
            eq.schedule(5, [&order] { order.push_back(-1); }));
    }
    for (auto h : doomed)
        eq.deschedule(h);
    EXPECT_EQ(eq.pendingEvents(), 64u);
    eq.run();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, DestructionDrainsPendingCaptures)
{
    // Captures owning resources are destroyed with the queue even if
    // their events never ran (the sanitizer build would flag the
    // shared_ptr as leaked otherwise).
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    {
        EventQueue eq;
        eq.schedule(10, [token] { (void)*token; });
        eq.schedule(20, [token] { (void)*token; });
        token.reset();
        EXPECT_FALSE(watch.expired());
    }
    EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, SteadyStateSchedulingDoesNotGrowSlabs)
{
    EventQueue eq;
    // Warm the slot pool to its high-water occupancy.
    for (int i = 0; i < 1000; ++i)
        eq.scheduleRel(Tick(i + 1), [] {});
    eq.run();
    std::uint64_t slabs = eq.slabAllocations();
    EXPECT_GE(eq.slotCapacity(), 1000u);
    // Steady state: the same occupancy recycles slots, never grows.
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 1000; ++i)
            eq.scheduleRel(Tick(i + 1), [] {});
        eq.run();
    }
    EXPECT_EQ(eq.slabAllocations(), slabs);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(EventQueue, RunUntilStopsExactlyAtHorizon)
{
    // Events at the horizon tick itself run; later ones stay queued,
    // and the clock lands exactly on the horizon either way (the PDES
    // quantum contract: after runUntil(h) the shard's clock IS h).
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(50, [&] { order.push_back(2); });
    eq.schedule(51, [&] { order.push_back(3); });

    EXPECT_EQ(eq.runUntil(50), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.curTick(), 50u);
    EXPECT_EQ(eq.pendingEvents(), 1u);
    EXPECT_EQ(eq.peekNextTick(), 51u);
}

TEST(EventQueue, RunUntilOnEmptyQueueAdvancesClock)
{
    // A drained shard still advances to the quantum edge so its
    // neighbors' lookahead guarantee keeps holding.
    EventQueue eq;
    EXPECT_EQ(eq.runUntil(1000), 0u);
    EXPECT_EQ(eq.curTick(), 1000u);
    EXPECT_EQ(eq.peekNextTick(), maxTick);

    // A horizon at or before the current tick is a no-op, never a
    // rewind.
    EXPECT_EQ(eq.runUntil(1000), 0u);
    EXPECT_EQ(eq.runUntil(5), 0u);
    EXPECT_EQ(eq.curTick(), 1000u);
}

TEST(EventQueue, RunUntilIsReentrant)
{
    // Quantum-by-quantum execution (the PDES driver loop) reaches the
    // same state as one run(): events land in their own quantum and
    // scheduling during a quantum stays legal.
    EventQueue eq;
    std::vector<Tick> fired;
    for (Tick t = 5; t <= 95; t += 10)
        eq.schedule(t, [&fired, t, &eq] {
            fired.push_back(t);
            // Chain into a later quantum from inside this one.
            if (t == 45)
                eq.schedule(72, [&fired] { fired.push_back(72); });
        });

    std::uint64_t total = 0;
    for (Tick h = 10; h <= 100; h += 10)
        total += eq.runUntil(h);
    EXPECT_EQ(total, 11u);
    EXPECT_EQ(eq.curTick(), 100u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(fired,
              (std::vector<Tick>{5, 15, 25, 35, 45, 55, 65, 72, 75,
                                 85, 95}));

    // The queue is still usable with plain run() afterwards.
    bool ran = false;
    eq.schedule(200, [&] { ran = true; });
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, PeekNextTickSkipsDescheduledEvents)
{
    EventQueue eq;
    std::uint64_t h = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.peekNextTick(), 10u);
    eq.deschedule(h);
    // The dead tick-10 entry must not be reported as pending work.
    EXPECT_EQ(eq.peekNextTick(), 20u);
    EXPECT_EQ(eq.runUntil(20), 1u);
}
