/**
 * @file
 * Driver-level tests: TX fast/slow paths and the per-socket zone
 * memo of the NetDIMM driver (Alg. 1), zero-copy buffer identity,
 * RX-context serialization, and allocCache integration.
 */

#include <gtest/gtest.h>

#include "net/Link.hh"
#include "kernel/Node.hh"

using namespace netdimm;

namespace
{

struct Pair
{
    EventQueue eq;
    Node a;
    Node b;
    EthLink link;

    explicit Pair(NicKind kind)
        : a(eq, "a", makeCfg(kind), 0), b(eq, "b", makeCfg(kind), 1),
          link(eq, "link", a.config().eth)
    {
        link.connect(a.endpoint(), b.endpoint());
        a.connectTo(link);
        b.connectTo(link);
    }

    static SystemConfig
    makeCfg(NicKind kind)
    {
        setQuiet(true);
        SystemConfig cfg;
        cfg.nic = kind;
        return cfg;
    }

    /** Send sequentially, return the delivered packets. */
    std::vector<PacketPtr>
    pingTrain(int n, std::uint32_t bytes, std::uint64_t flow = 3)
    {
        std::vector<PacketPtr> out;
        int sent = 0;
        std::function<void()> next = [&] {
            if (sent++ >= n)
                return;
            a.sendPacket(a.makeTxPacket(bytes, b.id(), flow));
        };
        b.setReceiveHandler([&](const PacketPtr &pkt, Tick) {
            out.push_back(pkt);
            eq.scheduleRel(usToTicks(1), next);
        });
        next();
        eq.run();
        return out;
    }
};

} // namespace

TEST(NetdimmDriverPath, FirstPacketSlowThenFast)
{
    Pair p(NicKind::NetDimm);
    auto pkts = p.pingTrain(6, 512);
    ASSERT_EQ(pkts.size(), 6u);
    auto *drv = static_cast<NetdimmDriver *>(&p.a.driver());
    EXPECT_EQ(drv->slowPathTx(), 1u);
    EXPECT_EQ(drv->fastPathTx(), 5u);

    // The slow path is visible as txCopy on the first packet only.
    EXPECT_GT(pkts[0]->lat.get(LatComp::TxCopy),
              pkts[1]->lat.get(LatComp::TxCopy));
}

TEST(NetdimmDriverPath, DistinctFlowsLearnIndependently)
{
    Pair p(NicKind::NetDimm);
    p.pingTrain(3, 256, /*flow=*/10);
    p.pingTrain(3, 256, /*flow=*/11);
    auto *drv = static_cast<NetdimmDriver *>(&p.a.driver());
    EXPECT_EQ(drv->slowPathTx(), 2u); // one COPY_NEEDED per flow
    EXPECT_EQ(drv->fastPathTx(), 4u);
}

TEST(NetdimmDriverPath, FastPathBuffersLiveOnNetDimm)
{
    Pair p(NicKind::NetDimm);
    auto pkts = p.pingTrain(4, 512);
    Addr region = p.a.netdimm()->regionBase();
    // After pinning, application buffers (and hence DMA buffers)
    // come from the NET0 zone.
    EXPECT_GE(pkts.back()->txBufAddr, region);
    // The first (COPY_NEEDED) packet's SKB was in ZONE_NORMAL but its
    // DMA buffer on the device.
    EXPECT_LT(pkts.front()->appSrcAddr, region);
    EXPECT_GE(pkts.front()->txBufAddr, region);
}

TEST(NetdimmDriverPath, RxBuffersClonedToSameSubArray)
{
    Pair p(NicKind::NetDimm);
    auto pkts = p.pingTrain(5, 1460);
    NetDimmDevice *dev = p.b.netdimm();
    // All RX clones ran in fast parallel mode thanks to the hinted
    // allocator.
    EXPECT_EQ(dev->rowCloneEngine().fpmClones(),
              dev->rowCloneEngine().fpmClones() +
                  0 * dev->rowCloneEngine().gcmClones());
    EXPECT_GT(dev->rowCloneEngine().fpmClones(), 0u);
    EXPECT_EQ(dev->rowCloneEngine().psmClones(), 0u);
    EXPECT_EQ(dev->rowCloneEngine().gcmClones(), 0u);
    // Destination differs from source but stays in the region.
    for (const auto &pkt : pkts) {
        EXPECT_NE(pkt->appDstAddr, pkt->rxBufAddr);
        EXPECT_GE(pkt->appDstAddr, dev->regionBase());
    }
}

TEST(NetdimmDriverPath, UnhintedAllocationDegradesCloneMode)
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = NicKind::NetDimm;
    cfg.netdimm.subArrayHint = false;

    EventQueue eq;
    Node a(eq, "a", cfg, 0), b(eq, "b", cfg, 1);
    EthLink link(eq, "link", cfg.eth);
    link.connect(a.endpoint(), b.endpoint());
    a.connectTo(link);
    b.connectTo(link);
    int got = 0;
    b.setReceiveHandler([&](const PacketPtr &, Tick) { ++got; });
    for (int i = 0; i < 5; ++i) {
        eq.schedule(usToTicks(5) * Tick(i + 1), [&a, &b] {
            a.sendPacket(a.makeTxPacket(1460, b.id(), 3));
        });
    }
    eq.run();
    ASSERT_EQ(got, 5);
    // Random sub-arrays essentially never coincide: PSM/GCM clones.
    EXPECT_EQ(b.netdimm()->rowCloneEngine().fpmClones(), 0u);
}

TEST(StandardDriverPath, ZeroCopyUsesApplicationBuffers)
{
    Pair zc(NicKind::IntegratedZeroCopy);
    auto pkts = zc.pingTrain(3, 1000);
    for (const auto &pkt : pkts) {
        EXPECT_EQ(pkt->txBufAddr, pkt->appSrcAddr);
        EXPECT_EQ(pkt->appDstAddr, pkt->rxBufAddr);
    }
}

TEST(StandardDriverPath, CopyModeUsesSeparateDmaBuffers)
{
    Pair cp(NicKind::Integrated);
    auto pkts = cp.pingTrain(3, 1000);
    for (const auto &pkt : pkts) {
        EXPECT_NE(pkt->txBufAddr, pkt->appSrcAddr);
        EXPECT_NE(pkt->appDstAddr, pkt->rxBufAddr);
        EXPECT_GT(pkt->lat.get(LatComp::TxCopy), 0u);
        EXPECT_GT(pkt->lat.get(LatComp::RxCopy), 0u);
    }
}

TEST(DriverRxContexts, SameFlowSerializesProcessing)
{
    // Two packets of one flow arriving back to back: the second's
    // software processing waits for the first, so its one-way
    // latency is strictly larger.
    Pair p(NicKind::Integrated);
    std::vector<PacketPtr> got;
    p.b.setReceiveHandler(
        [&](const PacketPtr &pkt, Tick) { got.push_back(pkt); });
    // Warm the flow, then send a burst.
    p.a.sendPacket(p.a.makeTxPacket(1460, p.b.id(), 3));
    p.eq.run();
    for (int i = 0; i < 4; ++i)
        p.a.sendPacket(p.a.makeTxPacket(1460, p.b.id(), 3));
    p.eq.run();
    ASSERT_EQ(got.size(), 5u);
    EXPECT_GT(got[4]->oneWayLatency(), got[1]->oneWayLatency());
}

TEST(DriverStats, TxRxCountersMatchTraffic)
{
    Pair p(NicKind::Discrete);
    p.pingTrain(7, 200);
    EXPECT_EQ(p.a.driver().txPackets(), 7u);
    EXPECT_EQ(p.b.driver().rxPackets(), 7u);
    EXPECT_EQ(p.a.nic()->txFrames(), 7u);
    EXPECT_EQ(p.b.nic()->rxFrames(), 7u);
    EXPECT_EQ(p.b.nic()->rxDrops(), 0u);
}

TEST(DriverStats, AllocCacheServesNetdimmBuffers)
{
    Pair p(NicKind::NetDimm);
    p.pingTrain(6, 512);
    AllocCache *ac = p.b.allocCache();
    ASSERT_NE(ac, nullptr);
    EXPECT_GT(ac->fastHits(), 0u);
    EXPECT_EQ(ac->slowAllocs(), 0u);
}
