/**
 * @file
 * Tests for the switched leaf-spine topology: routing correctness,
 * hop counts via latency, multi-node delivery, and a full end-to-end
 * run with real nodes on different racks.
 */

#include <gtest/gtest.h>

#include "net/Topology.hh"
#include "kernel/Node.hh"

using namespace netdimm;

namespace
{

struct SinkEndpoint : NetEndpoint
{
    EventQueue &eq;
    std::vector<std::pair<PacketPtr, Tick>> got;

    explicit SinkEndpoint(EventQueue &e) : eq(e) {}

    void
    deliver(const PacketPtr &pkt) override
    {
        got.emplace_back(pkt, eq.curTick());
    }
};

} // namespace

TEST(LeafSpine, RackLocalCrossesOneSwitch)
{
    EventQueue eq;
    EthConfig cfg;
    LeafSpineTopology topo(eq, "fab", 2, 2, cfg);
    SinkEndpoint a(eq), b(eq);
    EthLink &la = topo.attach(0, 0, &a);
    topo.attach(1, 0, &b);

    PacketPtr pkt = makePacket(200, 0, 1);
    la.send(&a, pkt);
    eq.run();
    ASSERT_EQ(b.got.size(), 1u);
    // access up + ToR + access down: 2 serializations, 1 switch.
    Tick expect = 2 * (la.frameTicks(200) + cfg.propagation +
                       cfg.macLatency) +
                  cfg.switchLatency;
    EXPECT_EQ(b.got[0].second, expect);
    EXPECT_EQ(topo.leaf(0).framesForwarded(), 1u);
    EXPECT_EQ(topo.spine(0).framesForwarded() +
                  topo.spine(1).framesForwarded(),
              0u);
}

TEST(LeafSpine, CrossRackCrossesThreeSwitches)
{
    EventQueue eq;
    EthConfig cfg;
    LeafSpineTopology topo(eq, "fab", 2, 2, cfg);
    SinkEndpoint a(eq), b(eq);
    EthLink &la = topo.attach(0, 0, &a);
    topo.attach(1, 1, &b);

    PacketPtr pkt = makePacket(200, 0, 1);
    la.send(&a, pkt);
    eq.run();
    ASSERT_EQ(b.got.size(), 1u);
    Tick expect = 4 * (la.frameTicks(200) + cfg.propagation +
                       cfg.macLatency) +
                  3 * cfg.switchLatency;
    EXPECT_EQ(b.got[0].second, expect);
    EXPECT_EQ(topo.fabricFrames(), 3u);
}

TEST(LeafSpine, EcmpSpreadsFlowsAcrossSpines)
{
    EventQueue eq;
    EthConfig cfg;
    LeafSpineTopology topo(eq, "fab", 2, 2, cfg);
    SinkEndpoint a(eq), b(eq);
    EthLink &la = topo.attach(0, 0, &a);
    topo.attach(1, 1, &b);

    // Many distinct flows to one destination: the (src, dst, flow)
    // hash must spread them over both spines, and every one must
    // arrive (full ECMP group, no pinned spine).
    const int flows = 32;
    for (int f = 0; f < flows; ++f) {
        PacketPtr pkt = makePacket(200, 0, 1);
        pkt->flowId = std::uint64_t(f);
        la.send(&a, pkt);
    }
    eq.run();
    EXPECT_EQ(b.got.size(), std::size_t(flows));
    EXPECT_GT(topo.spine(0).framesForwarded(), 0u);
    EXPECT_GT(topo.spine(1).framesForwarded(), 0u);
    EXPECT_EQ(topo.spine(0).framesForwarded() +
                  topo.spine(1).framesForwarded(),
              std::uint64_t(flows));
}

TEST(LeafSpine, EcmpSelectionIsAPureFunctionOfPacketFields)
{
    // One flow's packets all take the same spine (no reorder while
    // the path set is stable) and a rebuilt topology reproduces the
    // same split exactly: selection draws no randomness.
    auto run = [](std::vector<std::uint64_t> &per_spine) {
        EventQueue eq;
        EthConfig cfg;
        LeafSpineTopology topo(eq, "fab", 2, 2, cfg);
        SinkEndpoint a(eq), b(eq);
        EthLink &la = topo.attach(0, 0, &a);
        topo.attach(1, 1, &b);
        for (int f = 0; f < 16; ++f) {
            for (int rep = 0; rep < 3; ++rep) {
                PacketPtr pkt = makePacket(200, 0, 1);
                pkt->flowId = std::uint64_t(f);
                la.send(&a, pkt);
            }
        }
        eq.run();
        per_spine = {topo.spine(0).framesForwarded(),
                     topo.spine(1).framesForwarded()};
    };
    std::vector<std::uint64_t> first, second;
    run(first);
    run(second);
    EXPECT_EQ(first, second);
    // Repetitions of a flow never split across spines: every spine
    // count is a multiple of the 3 repetitions.
    EXPECT_EQ(first[0] % 3, 0u);
    EXPECT_EQ(first[1] % 3, 0u);
}

TEST(LeafSpine, ManyNodesAllPairsDeliver)
{
    EventQueue eq;
    EthConfig cfg;
    const std::uint32_t racks = 3, per_rack = 2;
    LeafSpineTopology topo(eq, "fab", racks, 2, cfg);
    std::vector<std::unique_ptr<SinkEndpoint>> eps;
    std::vector<EthLink *> links;
    for (std::uint32_t r = 0; r < racks; ++r) {
        for (std::uint32_t i = 0; i < per_rack; ++i) {
            eps.push_back(std::make_unique<SinkEndpoint>(eq));
            links.push_back(&topo.attach(
                std::uint32_t(eps.size() - 1), r, eps.back().get()));
        }
    }
    std::uint32_t n = std::uint32_t(eps.size());
    int expected = 0;
    for (std::uint32_t s = 0; s < n; ++s) {
        for (std::uint32_t d = 0; d < n; ++d) {
            if (s == d)
                continue;
            links[s]->send(eps[s].get(), makePacket(300, s, d));
            ++expected;
        }
    }
    eq.run();
    int delivered = 0;
    for (const auto &ep : eps)
        delivered += int(ep->got.size());
    EXPECT_EQ(delivered, expected);
}

TEST(LeafSpine, EndToEndNodesAcrossRacks)
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = NicKind::NetDimm;
    EventQueue eq;
    Node a(eq, "a", cfg, 0);
    Node b(eq, "b", cfg, 1);
    LeafSpineTopology topo(eq, "fab", 2, 2, cfg.eth);
    EthLink &la = topo.attach(0, 0, a.endpoint());
    EthLink &lb = topo.attach(1, 1, b.endpoint());
    NetEndpoint *ea = a.endpoint(), *eb = b.endpoint();
    a.setWire([&la, ea](const PacketPtr &p) { la.send(ea, p); });
    b.setWire([&lb, eb](const PacketPtr &p) { lb.send(eb, p); });

    int got = 0;
    Tick one_way = 0;
    b.setReceiveHandler([&](const PacketPtr &pkt, Tick) {
        ++got;
        one_way = pkt->oneWayLatency();
    });
    for (int i = 0; i < 3; ++i) {
        eq.schedule(usToTicks(5) * Tick(i + 1), [&a, &b] {
            a.sendPacket(a.makeTxPacket(512, b.id(), 3));
        });
    }
    eq.run();
    EXPECT_EQ(got, 3);
    // Direct-link NetDIMM @512B is ~1.2us; three switch hops and four
    // serializations push it past that but under 3us.
    EXPECT_GT(ticksToUs(one_way), 1.2);
    EXPECT_LT(ticksToUs(one_way), 3.0);
}
