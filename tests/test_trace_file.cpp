/**
 * @file
 * Tests for trace file serialization / parsing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/TraceFile.hh"

using namespace netdimm;

TEST(TraceFile, RoundTripPreservesRecords)
{
    TraceGen gen(ClusterType::Hadoop, 10.0, 42);
    auto records = TraceFile::synthesize(gen, 500);

    std::stringstream ss;
    TraceFile::write(ss, records);
    auto back = TraceFile::read(ss);

    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(back[i].bytes, records[i].bytes);
        EXPECT_EQ(back[i].locality, records[i].locality);
        // ns-resolution serialization: inter-arrivals match to 1ns.
        EXPECT_NEAR(double(back[i].interArrival),
                    double(records[i].interArrival),
                    2.0 * tickPerNs);
    }
}

TEST(TraceFile, ParsesCommentsAndBlankLines)
{
    std::stringstream ss;
    ss << "# a comment\n"
       << "\n"
       << "100 64 rack\n"
       << "250 1514 interdc  # trailing comment\n";
    auto recs = TraceFile::read(ss);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].bytes, 64u);
    EXPECT_EQ(recs[0].locality, TrafficLocality::IntraRack);
    EXPECT_EQ(recs[0].interArrival, nsToTicks(100));
    EXPECT_EQ(recs[1].bytes, 1514u);
    EXPECT_EQ(recs[1].locality, TrafficLocality::InterDatacenter);
    EXPECT_EQ(recs[1].interArrival, nsToTicks(150));
}

TEST(TraceFile, LocalityTokensRoundTrip)
{
    for (TrafficLocality loc :
         {TrafficLocality::IntraRack, TrafficLocality::IntraCluster,
          TrafficLocality::IntraDatacenter,
          TrafficLocality::InterDatacenter}) {
        TrafficLocality out;
        ASSERT_TRUE(
            TraceFile::parseLocality(TraceFile::localityToken(loc), out));
        EXPECT_EQ(out, loc);
    }
    TrafficLocality out;
    EXPECT_FALSE(TraceFile::parseLocality("mars", out));
}

TEST(TraceFileDeath, RejectsMalformedLines)
{
    std::stringstream a("100 64\n");
    EXPECT_DEATH((void)TraceFile::read(a), "expected");
    std::stringstream b("100 64 nowhere\n");
    EXPECT_DEATH((void)TraceFile::read(b), "locality");
    std::stringstream c("100 64 rack\n50 64 rack\n");
    EXPECT_DEATH((void)TraceFile::read(c), "non-decreasing");
    std::stringstream d("100 0 rack\n");
    EXPECT_DEATH((void)TraceFile::read(d), "implausible");
}

TEST(TraceFile, StoreAndLoadDisk)
{
    TraceGen gen(ClusterType::Webserver, 8.0, 7);
    auto records = TraceFile::synthesize(gen, 100);
    std::string path = ::testing::TempDir() + "/nd_trace_test.txt";
    TraceFile::store(path, records);
    auto back = TraceFile::load(path);
    ASSERT_EQ(back.size(), records.size());
    EXPECT_EQ(back[42].bytes, records[42].bytes);
}
