/**
 * @file
 * Tests for the notification models (polling vs interrupt with
 * moderation) and the kernel-stack surcharge.
 */

#include <gtest/gtest.h>

#include "workload/LatencyHarness.hh"

using namespace netdimm;

namespace
{
SystemConfig
quiet()
{
    setQuiet(true);
    return SystemConfig{};
}
} // namespace

class NotifyModeTest : public ::testing::TestWithParam<NicKind>
{
};

TEST_P(NotifyModeTest, InterruptAddsDeliveryLatency)
{
    SystemConfig poll = quiet();
    poll.sw.notify = NotifyMode::Polling;
    SystemConfig intr = quiet();
    intr.sw.notify = NotifyMode::Interrupt;

    double p = LatencyHarness(poll, GetParam()).run(256).totalUs;
    double i = LatencyHarness(intr, GetParam()).run(256).totalUs;
    double penalty_us = i - p;
    // The interrupt path costs roughly its configured latency extra.
    EXPECT_GT(penalty_us, 0.5 * ticksToUs(intr.sw.interruptLatency));
    EXPECT_LT(penalty_us, 3.0 * ticksToUs(intr.sw.interruptLatency));
}

TEST_P(NotifyModeTest, KernelStackSurchargeAppliesBothSides)
{
    SystemConfig bare = quiet();
    SystemConfig kern = quiet();
    kern.sw.kernelStackCycles = 8000;

    double b = LatencyHarness(bare, GetParam()).run(256).totalUs;
    double k = LatencyHarness(kern, GetParam()).run(256).totalUs;
    // 8000 cycles at 3.4GHz ~= 2.35us per side -> ~4.7us one-way.
    EXPECT_NEAR(k - b, 2.0 * 8000.0 * 0.294 / 1000.0, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Nics, NotifyModeTest,
    ::testing::Values(NicKind::Discrete, NicKind::Integrated,
                      NicKind::NetDimm),
    [](const ::testing::TestParamInfo<NicKind> &info) {
        std::string n = nicKindName(info.param);
        for (auto &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

TEST(NotifyModes, KernelStackFadesNetDimmGain)
{
    // The Sec. 5.1 claim: with a heavy kernel stack, the relative
    // improvement of NetDIMM over dNIC shrinks.
    SystemConfig bare = quiet();
    SystemConfig kern = quiet();
    kern.sw.kernelStackCycles = 20000;

    auto gain = [](const SystemConfig &cfg) {
        double d =
            LatencyHarness(cfg, NicKind::Discrete).run(256).totalUs;
        double n =
            LatencyHarness(cfg, NicKind::NetDimm).run(256).totalUs;
        return 1.0 - n / d;
    };
    double g_bare = gain(bare);
    double g_kern = gain(kern);
    EXPECT_GT(g_bare, 0.4);
    EXPECT_LT(g_kern, 0.6 * g_bare);
}

TEST(NotifyModes, AdaptivePollingMatchesPollingUnderSteadyTraffic)
{
    // A ping train with 2us gaps stays inside the 50us adaptive
    // window after the first packet, so steady-state latency matches
    // pure polling (only the cold-start packet pays an interrupt,
    // and warmup swallows it).
    SystemConfig poll = quiet();
    poll.sw.notify = NotifyMode::Polling;
    SystemConfig adapt = quiet();
    adapt.sw.notify = NotifyMode::AdaptivePolling;

    double p =
        LatencyHarness(poll, NicKind::NetDimm).run(256, 20, 6).totalUs;
    double a = LatencyHarness(adapt, NicKind::NetDimm)
                   .run(256, 20, 6)
                   .totalUs;
    EXPECT_NEAR(a, p, 0.05 * p);
}

TEST(NotifyModes, AdaptivePollingPaysInterruptAfterIdle)
{
    SystemConfig cfg = quiet();
    cfg.nic = NicKind::Integrated;
    cfg.sw.notify = NotifyMode::AdaptivePolling;

    EventQueue eq;
    Node a(eq, "a", cfg, 0), b(eq, "b", cfg, 1);
    EthLink link(eq, "link", cfg.eth);
    link.connect(a.endpoint(), b.endpoint());
    a.connectTo(link);
    b.connectTo(link);

    std::vector<PacketPtr> got;
    b.setReceiveHandler(
        [&](const PacketPtr &pkt, Tick) { got.push_back(pkt); });

    // Packet 1 (cold), packet 2 right behind it (inside the window),
    // packet 3 after a long idle gap (window expired).
    eq.schedule(usToTicks(1),
                [&] { a.sendPacket(a.makeTxPacket(256, b.id(), 3)); });
    eq.schedule(usToTicks(10),
                [&] { a.sendPacket(a.makeTxPacket(256, b.id(), 3)); });
    eq.schedule(usToTicks(500),
                [&] { a.sendPacket(a.makeTxPacket(256, b.id(), 3)); });
    eq.run();
    ASSERT_EQ(got.size(), 3u);
    double warm = ticksToUs(got[1]->oneWayLatency());
    double idle = ticksToUs(got[2]->oneWayLatency());
    // The post-idle packet pays a fresh interrupt; the in-window one
    // does not.
    EXPECT_GT(idle, warm + 0.5 * ticksToUs(cfg.sw.interruptLatency));
}

TEST(NotifyModes, ModerationBatchesBackToBackArrivals)
{
    // Two packets arriving inside one moderation window: the second
    // is noticed no later than (roughly) the first's delivery, not a
    // full interrupt latency after its own arrival.
    SystemConfig cfg = quiet();
    cfg.nic = NicKind::Integrated;
    cfg.sw.notify = NotifyMode::Interrupt;

    EventQueue eq;
    Node a(eq, "a", cfg, 0), b(eq, "b", cfg, 1);
    EthLink link(eq, "link", cfg.eth);
    link.connect(a.endpoint(), b.endpoint());
    a.connectTo(link);
    b.connectTo(link);

    std::vector<PacketPtr> got;
    b.setReceiveHandler(
        [&](const PacketPtr &pkt, Tick) { got.push_back(pkt); });
    // Same flow: arrivals land ~360ns apart, far inside the 4us
    // moderation window.
    a.sendPacket(a.makeTxPacket(1460, b.id(), 3));
    a.sendPacket(a.makeTxPacket(1460, b.id(), 3));
    eq.run();
    ASSERT_EQ(got.size(), 2u);
    // Both one-way latencies include roughly ONE interrupt delivery;
    // the second is not double-charged.
    double l0 = ticksToUs(got[0]->oneWayLatency());
    double l1 = ticksToUs(got[1]->oneWayLatency());
    EXPECT_LT(l1, l0 + ticksToUs(cfg.sw.interruptLatency));
}
