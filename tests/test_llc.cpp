/**
 * @file
 * Unit tests for the LLC + DDIO model: hit/miss behaviour, the
 * DDIO-restricted ways, DMA leakage accounting, flush/invalidate.
 */

#include <gtest/gtest.h>

#include "cache/Llc.hh"

using namespace netdimm;

namespace
{

/** Memory stand-in with fixed latency and access counting. */
struct CountingMem : MemTarget
{
    EventQueue &eq;
    Tick latency = nsToTicks(60);
    int reads = 0;
    int writes = 0;

    explicit CountingMem(EventQueue &e) : eq(e) {}

    void
    access(const MemRequestPtr &req) override
    {
        (req->write ? writes : reads)++;
        Tick done = eq.curTick() + latency;
        eq.schedule(done, [req, done] {
            if (req->onDone)
                req->onDone(done);
        });
    }
};

struct Fixture
{
    EventQueue eq;
    SystemConfig cfg;
    CountingMem mem;
    Llc llc;

    Fixture() : mem(eq), llc(eq, "llc", cfg.llc, cfg.cpu, mem) {}

    Tick
    blockingAccess(Addr addr, std::uint32_t size = 64,
                   bool write = false)
    {
        Tick done = 0;
        auto req = makeMemRequest(addr, size, write, MemSource::HostCpu,
                                  [&](Tick t) { done = t; });
        llc.access(req);
        eq.run();
        return done;
    }
};

} // namespace

TEST(Llc, MissThenHit)
{
    Fixture f;
    Tick miss = f.blockingAccess(0);
    EXPECT_EQ(f.llc.misses(), 1u);
    EXPECT_GE(miss, f.mem.latency);

    Tick t0 = f.eq.curTick();
    Tick hit = f.blockingAccess(0) - t0;
    EXPECT_EQ(f.llc.hits(), 1u);
    EXPECT_EQ(hit, f.llc.hitLatency());
    EXPECT_LT(hit, miss);
}

TEST(Llc, ProbeReflectsResidency)
{
    Fixture f;
    EXPECT_FALSE(f.llc.probe(4096));
    f.blockingAccess(4096);
    EXPECT_TRUE(f.llc.probe(4096));
    EXPECT_FALSE(f.llc.probe(8192));
}

TEST(Llc, WriteMissAllocatesDirtyLine)
{
    Fixture f;
    f.blockingAccess(0, 64, /*write=*/true);
    EXPECT_TRUE(f.llc.probe(0));
    // Flushing it writes it back to memory.
    int before = f.mem.writes;
    Tick done = 0;
    f.llc.flush(0, 64, MemSource::HostCpu, [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_EQ(f.mem.writes, before + 1);
    EXPECT_EQ(f.llc.writebacks(), 1u);
    EXPECT_GE(done, f.mem.latency);
    // Line stays valid and clean: a second flush is cheap.
    EXPECT_TRUE(f.llc.probe(0));
    before = f.mem.writes;
    f.llc.flush(0, 64, MemSource::HostCpu, nullptr);
    f.eq.run();
    EXPECT_EQ(f.mem.writes, before);
}

TEST(Llc, InvalidateDropsLines)
{
    Fixture f;
    f.blockingAccess(0, 256);
    EXPECT_TRUE(f.llc.probe(0));
    EXPECT_TRUE(f.llc.probe(192));
    f.llc.invalidate(0, 256);
    EXPECT_FALSE(f.llc.probe(0));
    EXPECT_FALSE(f.llc.probe(192));
}

TEST(Llc, DmaWriteInstallsWithoutMemoryRead)
{
    Fixture f;
    Tick done = 0;
    f.llc.dmaWrite(0, 1024, MemSource::HostDma,
                   [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_EQ(f.mem.reads, 0);
    EXPECT_EQ(f.llc.ddioInserts(), 16u);
    EXPECT_TRUE(f.llc.probe(0));
    EXPECT_EQ(done, f.llc.hitLatency());
}

TEST(Llc, DmaReadHitsAfterDmaWrite)
{
    Fixture f;
    f.llc.dmaWrite(0, 512, MemSource::HostDma, nullptr);
    f.eq.run();
    Tick t0 = f.eq.curTick();
    Tick done = 0;
    f.llc.dmaRead(0, 512, MemSource::HostDma,
                  [&](Tick t) { done = t - t0; });
    f.eq.run();
    EXPECT_EQ(done, f.llc.hitLatency());
    EXPECT_EQ(f.mem.reads, 0);
}

TEST(Llc, DmaReadMissGoesToMemory)
{
    Fixture f;
    Tick done = 0;
    f.llc.dmaRead(1 << 20, 256, MemSource::HostDma,
                  [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_GE(done, f.mem.latency);
    EXPECT_EQ(f.mem.reads, 1); // one combined fill request
}

TEST(Llc, DdioConfinedToRestrictedWays)
{
    Fixture f;
    // 16-way, 10% DDIO -> 2 ways per set. Stream DMA writes mapping
    // to the same set; only 2 survive.
    std::uint32_t sets = std::uint32_t(
        f.cfg.llc.sizeBytes / f.cfg.llc.lineBytes / f.cfg.llc.assoc);
    Addr stride = Addr(sets) * f.cfg.llc.lineBytes;
    for (int i = 0; i < 8; ++i)
        f.llc.dmaWrite(Addr(i) * stride, 64, MemSource::HostDma,
                       nullptr);
    f.eq.run();
    int resident = 0;
    for (int i = 0; i < 8; ++i)
        resident += f.llc.probe(Addr(i) * stride);
    EXPECT_EQ(resident, 2);
    // Six DDIO lines were evicted before any CPU read: DMA leakage.
    EXPECT_EQ(f.llc.ddioLeaks(), 6u);
    // Evicted dirty DMA lines were written back to memory.
    EXPECT_EQ(f.mem.writes, 6);
}

TEST(Llc, CpuReadClearsDdioMark)
{
    Fixture f;
    std::uint32_t sets = std::uint32_t(
        f.cfg.llc.sizeBytes / f.cfg.llc.lineBytes / f.cfg.llc.assoc);
    Addr stride = Addr(sets) * f.cfg.llc.lineBytes;
    f.llc.dmaWrite(0, 64, MemSource::HostDma, nullptr);
    f.eq.run();
    // CPU consumes the line: no longer counts as leak if evicted.
    f.blockingAccess(0);
    for (int i = 1; i < 4; ++i)
        f.llc.dmaWrite(Addr(i) * stride, 64, MemSource::HostDma,
                       nullptr);
    f.eq.run();
    EXPECT_EQ(f.llc.ddioLeaks(), 1u); // only one unconsumed eviction
}

TEST(Llc, CpuFillsUseFullAssociativity)
{
    Fixture f;
    std::uint32_t sets = std::uint32_t(
        f.cfg.llc.sizeBytes / f.cfg.llc.lineBytes / f.cfg.llc.assoc);
    Addr stride = Addr(sets) * f.cfg.llc.lineBytes;
    for (std::uint32_t i = 0; i < f.cfg.llc.assoc; ++i)
        f.blockingAccess(Addr(i) * stride);
    int resident = 0;
    for (std::uint32_t i = 0; i < f.cfg.llc.assoc; ++i)
        resident += f.llc.probe(Addr(i) * stride);
    EXPECT_EQ(resident, int(f.cfg.llc.assoc));
}

TEST(Llc, MultiLineAccessCompletesOnce)
{
    Fixture f;
    int completions = 0;
    auto req = makeMemRequest(0, 4096, false, MemSource::HostCpu,
                              [&](Tick) { ++completions; });
    f.llc.access(req);
    f.eq.run();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(f.llc.misses(), 64u);
}
