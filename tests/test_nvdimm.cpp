/**
 * @file
 * Unit tests for the NVDIMM-P asynchronous protocol engine: the
 * XRD/RDY/SEND read flow, posted writes, request-ID throttling and
 * out-of-order completion (Sec. 2.2 / Fig. 3 of the paper).
 */

#include <gtest/gtest.h>

#include "nvdimm/NvdimmDevice.hh"

using namespace netdimm;

namespace
{

/** Device with a scriptable media latency. */
class FakeNvdimm : public NvdimmPDevice
{
  public:
    Tick fixedLatency = nsToTicks(50);
    /** Optional per-request latency override keyed by address. */
    std::map<Addr, Tick> perAddr;
    int mediaCalls = 0;

    FakeNvdimm(EventQueue &eq, const SystemConfig &cfg,
               MemoryController &host, std::uint32_t max_ids = 64)
        : NvdimmPDevice(eq, "nv", cfg, host, max_ids)
    {}

  protected:
    void
    mediaAccess(const MemRequestPtr &req,
                MemRequest::Completion done) override
    {
        ++mediaCalls;
        Tick lat = fixedLatency;
        auto it = perAddr.find(req->addr);
        if (it != perAddr.end())
            lat = it->second;
        Tick ready = eventq().curTick() + lat;
        eventq().schedule(ready,
                          [done = std::move(done), ready] {
                              done(ready);
                          });
    }

    Tick idealMediaLatency() const override { return fixedLatency; }
};

struct Fixture
{
    EventQueue eq;
    SystemConfig cfg;
    DramGeometry perChannel;
    MemoryController host;
    FakeNvdimm dev;

    explicit Fixture(std::uint32_t max_ids = 64)
        : perChannel(makeGeo(cfg)),
          host(eq, "host", cfg.dram, perChannel, cfg.memCtrl),
          dev(eq, cfg, host, max_ids)
    {}

    static DramGeometry
    makeGeo(const SystemConfig &cfg)
    {
        DramGeometry g = cfg.hostMem;
        g.channels = 1;
        return g;
    }

    Tick
    blockingRead(Addr addr, std::uint32_t size = 64)
    {
        Tick done = 0;
        auto req = makeMemRequest(addr, size, false, MemSource::HostCpu,
                                  [&](Tick t) { done = t; });
        dev.access(req);
        eq.run();
        return done;
    }
};

} // namespace

TEST(NvdimmP, ReadLatencyMatchesIdealAnalytic)
{
    Fixture f;
    Tick done = f.blockingRead(0);
    EXPECT_EQ(done, f.dev.idealHostReadLatency());
    EXPECT_EQ(f.dev.hostReads(), 1u);
    EXPECT_EQ(f.dev.mediaCalls, 1);
}

TEST(NvdimmP, ReadCoversMediaPlusProtocolOverheads)
{
    Fixture f;
    Tick done = f.blockingRead(0);
    // Must at least pay media + async handshake + one DQ burst.
    EXPECT_GE(done, f.dev.fixedLatency +
                        f.cfg.netdimm.asyncProtocolOverhead +
                        f.cfg.dram.clocks(f.cfg.dram.tBURST));
}

TEST(NvdimmP, WriteIsPostedButReachesMedia)
{
    Fixture f;
    Tick done = 0;
    auto req = makeMemRequest(0, 64, true, MemSource::HostCpu,
                              [&](Tick t) { done = t; });
    f.dev.access(req);
    f.eq.run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(f.dev.hostWrites(), 1u);
    EXPECT_EQ(f.dev.mediaCalls, 1);
}

TEST(NvdimmP, LargerReadsOccupyMoreDqTime)
{
    Fixture f;
    Tick small = f.blockingRead(0, 64);
    Tick t0 = f.eq.curTick();
    Tick large = f.blockingRead(8192, 4096) - t0;
    // 64 bursts vs 1 burst on the DQ bus.
    EXPECT_GT(large, small);
}

TEST(NvdimmP, OutOfOrderCompletionByMediaLatency)
{
    Fixture f;
    f.dev.perAddr[0] = usToTicks(10); // slow
    f.dev.perAddr[4096] = nsToTicks(10); // fast

    std::vector<Addr> order;
    auto slow = makeMemRequest(0, 64, false, MemSource::HostCpu,
                               [&](Tick) { order.push_back(0); });
    auto fast = makeMemRequest(4096, 64, false, MemSource::HostCpu,
                               [&](Tick) { order.push_back(4096); });
    f.dev.access(slow);
    f.dev.access(fast);
    f.eq.run();
    // The later, faster request completes first: the request IDs of
    // NVDIMM-P exist precisely to allow this.
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 4096u);
    EXPECT_EQ(order[1], 0u);
}

TEST(NvdimmP, RequestIdExhaustionStallsAndRecovers)
{
    Fixture f(/*max_ids=*/2);
    int done = 0;
    for (int i = 0; i < 8; ++i) {
        auto req = makeMemRequest(Addr(i) * 64, 64, false,
                                  MemSource::HostCpu,
                                  [&](Tick) { ++done; });
        f.dev.access(req);
    }
    EXPECT_GT(f.dev.idStalls(), 0u);
    f.eq.run();
    EXPECT_EQ(done, 8);
    EXPECT_EQ(f.dev.outstandingIds(), 0u);
}

TEST(NvdimmP, HostBusContentionDelaysConventionalTraffic)
{
    Fixture f;
    // Saturate the NVDIMM with a large read whose data return claims
    // DQ slots, then check a conventional DRAM access on the same
    // channel queues behind it.
    Tick lone = 0;
    {
        auto probe = makeMemRequest(0, 64, false, MemSource::HostCpu,
                                    [&](Tick t) { lone = t; });
        f.host.access(probe);
        f.eq.run();
    }
    Tick t0 = f.eq.curTick();
    auto big = makeMemRequest(0, 8192, false, MemSource::HostCpu,
                              nullptr);
    f.dev.access(big);
    Tick loaded = 0;
    auto probe2 = makeMemRequest(1 << 20, 64, false, MemSource::HostCpu,
                                 [&](Tick t) { loaded = t; });
    f.host.access(probe2);
    f.eq.run();
    EXPECT_GT(loaded - t0, lone);
}
