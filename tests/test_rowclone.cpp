/**
 * @file
 * Unit tests for the RowClone engine: mode selection (FPM/PSM/GCM),
 * latency relations, bank blocking and statistics.
 */

#include <gtest/gtest.h>

#include "mem/RowClone.hh"

using namespace netdimm;

namespace
{

struct Fixture
{
    EventQueue eq;
    SystemConfig cfg;
    DramGeometry geo;
    MemoryController mc;
    RowCloneEngine rc;

    Fixture()
        : geo(makeGeo()),
          mc(eq, "nmc", cfg.dram, geo, cfg.memCtrl),
          rc(eq, "rc", mc, cfg.netdimm.rowClone)
    {}

    static DramGeometry
    makeGeo()
    {
        DramGeometry g;
        g.channels = 1;
        g.ranksPerChannel = 2;
        return g;
    }

    /** Two page addresses in the same (rank, bank, sub-array). */
    std::pair<Addr, Addr>
    sameSubArrayPages()
    {
        const DimmDecoder &dec = mc.decoder();
        return {dec.pageAddress(0, 3, 7, 0), dec.pageAddress(0, 3, 7, 1)};
    }
};

} // namespace

TEST(RowClone, FpmForSameSubArray)
{
    Fixture f;
    auto [src, dst] = f.sameSubArrayPages();
    EXPECT_EQ(f.rc.selectMode(src, dst), CloneMode::FPM);
}

TEST(RowClone, PsmForDifferentBanksSameRank)
{
    Fixture f;
    const DimmDecoder &dec = f.mc.decoder();
    Addr src = dec.pageAddress(0, 3, 7, 0);
    Addr dst = dec.pageAddress(0, 4, 7, 0);
    EXPECT_EQ(f.rc.selectMode(src, dst), CloneMode::PSM);
}

TEST(RowClone, GcmAcrossRanks)
{
    Fixture f;
    const DimmDecoder &dec = f.mc.decoder();
    Addr src = dec.pageAddress(0, 3, 7, 0);
    Addr dst = dec.pageAddress(1, 3, 7, 0);
    EXPECT_EQ(f.rc.selectMode(src, dst), CloneMode::GCM);
}

TEST(RowClone, GcmForSameBankDifferentSubArray)
{
    Fixture f;
    const DimmDecoder &dec = f.mc.decoder();
    Addr src = dec.pageAddress(0, 3, 7, 0);
    Addr dst = dec.pageAddress(0, 3, 9, 0);
    EXPECT_EQ(f.rc.selectMode(src, dst), CloneMode::GCM);
}

TEST(RowClone, MisalignedRowOffsetsFallBackFromFpm)
{
    Fixture f;
    auto [src, dst] = f.sameSubArrayPages();
    // Different offsets within the row cannot use two bare
    // activations.
    EXPECT_NE(f.rc.selectMode(src + 64, dst + 128), CloneMode::FPM);
}

TEST(RowClone, SameRowIsNotFpm)
{
    Fixture f;
    auto [src, dst] = f.sameSubArrayPages();
    (void)dst;
    EXPECT_NE(f.rc.selectMode(src, src), CloneMode::FPM);
}

TEST(RowClone, FpmLatencyScalesWithRows)
{
    Fixture f;
    auto [src, dst] = f.sameSubArrayPages();
    Tick one_row = f.rc.idealLatency(src, dst, 1024);
    Tick four_rows = f.rc.idealLatency(src, dst, 4096);
    EXPECT_EQ(one_row, f.cfg.netdimm.rowClone.fpmPerRow);
    EXPECT_EQ(four_rows, 4 * one_row);
    // Sub-row copies still pay a full row pair.
    EXPECT_EQ(f.rc.idealLatency(src, dst, 64), one_row);
}

TEST(RowClone, ModeLatencyOrderingFpmFastest)
{
    Fixture f;
    const DimmDecoder &dec = f.mc.decoder();
    Addr s = dec.pageAddress(0, 3, 7, 0);
    Addr fpm_d = dec.pageAddress(0, 3, 7, 1);
    Addr psm_d = dec.pageAddress(0, 4, 7, 0);
    Addr gcm_d = dec.pageAddress(1, 3, 7, 0);
    Tick fpm = f.rc.idealLatency(s, fpm_d, 4096);
    Tick psm = f.rc.idealLatency(s, psm_d, 4096);
    Tick gcm = f.rc.idealLatency(s, gcm_d, 4096);
    EXPECT_LT(fpm, psm);
    EXPECT_LT(psm, gcm);
}

TEST(RowClone, CloneCompletesAtIdealLatencyWhenIdle)
{
    Fixture f;
    auto [src, dst] = f.sameSubArrayPages();
    Tick done = 0;
    CloneMode mode{};
    f.rc.clone(src, dst, 1460, [&](Tick t, CloneMode m) {
        done = t;
        mode = m;
    });
    f.eq.run();
    EXPECT_EQ(mode, CloneMode::FPM);
    EXPECT_EQ(done, f.rc.idealLatency(src, dst, 1460));
    EXPECT_EQ(f.rc.fpmClones(), 1u);
    EXPECT_EQ(f.rc.bytesCloned(), 1460u);
}

TEST(RowClone, CloneBlocksInvolvedBanks)
{
    Fixture f;
    auto [src, dst] = f.sameSubArrayPages();
    f.rc.clone(src, dst, 4096, nullptr);

    // A read to the cloning bank waits for the clone to finish.
    Tick done = 0;
    auto req = makeMemRequest(src, 64, false, MemSource::HostCpu,
                              [&](Tick t) { done = t; });
    f.mc.access(req);
    f.eq.run();
    EXPECT_GE(done, f.rc.idealLatency(src, dst, 4096));
}

TEST(RowClone, PsmAndGcmOccupyTheLocalBus)
{
    Fixture f;
    const DimmDecoder &dec = f.mc.decoder();
    Addr src = dec.pageAddress(0, 3, 7, 0);
    Addr dst = dec.pageAddress(0, 4, 7, 0); // PSM
    f.rc.clone(src, dst, 4096, nullptr);

    // An unrelated-bank read still queues behind the bus reservation.
    Addr other = dec.pageAddress(0, 9, 100, 0);
    Tick done = 0;
    auto req = makeMemRequest(other, 64, false, MemSource::HostCpu,
                              [&](Tick t) { done = t; });
    f.mc.access(req);
    f.eq.run();
    EXPECT_GT(done, f.cfg.netdimm.rowClone.psmSetup);
    EXPECT_EQ(f.rc.psmClones(), 1u);
}

TEST(RowClone, ModeNames)
{
    EXPECT_STREQ(cloneModeName(CloneMode::FPM), "FPM");
    EXPECT_STREQ(cloneModeName(CloneMode::PSM), "PSM");
    EXPECT_STREQ(cloneModeName(CloneMode::GCM), "GCM");
}
