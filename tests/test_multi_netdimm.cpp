/**
 * @file
 * Multi-NetDIMM integration (Sec. 4.2.1: "a system can have multiple
 * NetDIMMs installed on memory channels and each needs a different
 * memory zone"): two NetDimmDevices on one host memory system, each
 * with its own NET(i) zone, allocCache and driver, serving traffic
 * to two different peers concurrently.
 */

#include <gtest/gtest.h>

#include "net/Link.hh"
#include "kernel/Node.hh"

using namespace netdimm;

namespace
{

/** Hand-built host with two NetDIMMs (one per channel). */
struct DualHost
{
    EventQueue &eq;
    SystemConfig cfg;
    MemorySystem mem;
    Llc llc;
    CopyEngine copy;
    PageAllocator alloc;
    std::unique_ptr<NetDimmDevice> dev0, dev1;
    std::unique_ptr<NetdimmZoneAllocator> zone0, zone1;
    std::unique_ptr<AllocCache> cache0, cache1;
    std::unique_ptr<NetdimmDriver> drv0, drv1;

    explicit DualHost(EventQueue &e)
        : eq(e), cfg(makeCfg()), mem(e, "host.mem", cfg),
          llc(e, "host.llc", cfg.llc, cfg.cpu, mem),
          copy(e, "host.copy", cfg, llc),
          alloc(1 << 20, cfg.hostMem.totalBytes() - (1 << 20))
    {
        dev0 = std::make_unique<NetDimmDevice>(e, "host.nd0", cfg,
                                               mem.channel(0));
        Addr b0 = mem.attachNetDimm(dev0->mappedBytes(), 0, *dev0);
        dev0->setRegionBase(b0);
        dev1 = std::make_unique<NetDimmDevice>(e, "host.nd1", cfg,
                                               mem.channel(1));
        Addr b1 = mem.attachNetDimm(dev1->mappedBytes(), 1, *dev1);
        dev1->setRegionBase(b1);

        zone0 = std::make_unique<NetdimmZoneAllocator>(
            b0, NetDimmDevice::localGeometry(cfg));
        zone1 = std::make_unique<NetdimmZoneAllocator>(
            b1, NetDimmDevice::localGeometry(cfg));
        alloc.addNetZone(0, zone0.get());
        alloc.addNetZone(1, zone1.get());
        cache0 = std::make_unique<AllocCache>(
            e, "host.ac0", *zone0,
            cfg.netdimm.allocCachePagesPerSubArray);
        cache1 = std::make_unique<AllocCache>(
            e, "host.ac1", *zone1,
            cfg.netdimm.allocCachePagesPerSubArray);
        drv0 = std::make_unique<NetdimmDriver>(e, "host.drv0", cfg,
                                               *dev0, llc, copy,
                                               *cache0, mem, 0);
        drv1 = std::make_unique<NetdimmDriver>(e, "host.drv1", cfg,
                                               *dev1, llc, copy,
                                               *cache1, mem, 1);
    }

    static SystemConfig
    makeCfg()
    {
        setQuiet(true);
        SystemConfig cfg;
        cfg.nic = NicKind::NetDimm;
        cfg.numNetDimms = 2;
        return cfg;
    }
};

} // namespace

TEST(MultiNetDimm, RegionsAreDisjointAndRouted)
{
    EventQueue eq;
    DualHost host(eq);
    Addr b0 = host.dev0->regionBase();
    Addr b1 = host.dev1->regionBase();
    EXPECT_EQ(b1, b0 + host.dev0->mappedBytes());

    // Reads to each region land on the right device.
    auto blocking_read = [&](Addr a) {
        Tick done = 0;
        auto req = makeMemRequest(a, 64, false, MemSource::HostCpu,
                                  [&](Tick t) { done = t; });
        host.mem.access(req);
        eq.run();
        return done;
    };
    blocking_read(b0 + 4096);
    EXPECT_EQ(host.dev0->hostReads(), 1u);
    EXPECT_EQ(host.dev1->hostReads(), 0u);
    blocking_read(b1 + 4096);
    EXPECT_EQ(host.dev1->hostReads(), 1u);
}

TEST(MultiNetDimm, ZonesAllocateFromTheirOwnRegions)
{
    EventQueue eq;
    DualHost host(eq);
    Addr p0 = host.alloc.allocPages(netZone(0), 1);
    Addr p1 = host.alloc.allocPages(netZone(1), 1);
    EXPECT_GE(p0, host.dev0->regionBase());
    EXPECT_LT(p0, host.dev0->regionBase() + host.dev0->localBytes());
    EXPECT_GE(p1, host.dev1->regionBase());
    EXPECT_LT(p1, host.dev1->regionBase() + host.dev1->localBytes());
}

TEST(MultiNetDimm, BothPortsServeTrafficConcurrently)
{
    EventQueue eq;
    DualHost host(eq);
    SystemConfig peer_cfg = DualHost::makeCfg();
    peer_cfg.numNetDimms = 1;

    Node peer0(eq, "peer0", peer_cfg, 10);
    Node peer1(eq, "peer1", peer_cfg, 11);
    EthLink l0(eq, "l0", host.cfg.eth), l1(eq, "l1", host.cfg.eth);
    l0.connect(host.dev0.get(), peer0.endpoint());
    l1.connect(host.dev1.get(), peer1.endpoint());
    NetDimmDevice *d0 = host.dev0.get(), *d1 = host.dev1.get();
    d0->setWire([&l0, d0](const PacketPtr &p) { l0.send(d0, p); });
    d1->setWire([&l1, d1](const PacketPtr &p) { l1.send(d1, p); });
    peer0.connectTo(l0);
    peer1.connectTo(l1);

    int got0 = 0, got1 = 0;
    peer0.setReceiveHandler([&](const PacketPtr &, Tick) { ++got0; });
    peer1.setReceiveHandler([&](const PacketPtr &, Tick) { ++got1; });

    // Interleave sends on both ports; application buffers come from
    // the serving zone once the connection is pinned (the stack's
    // allocAppBuffer path), exactly like Node::makeTxPacket does.
    auto send_on = [](NetdimmDriver &drv, std::uint32_t dst,
                      std::uint64_t flow, Addr fallback) {
        PacketPtr pkt = makePacket(512, 1, dst);
        pkt->flowId = flow;
        Addr buf = drv.allocAppBuffer(flow);
        pkt->appSrcAddr = buf ? buf : fallback;
        drv.send(pkt);
    };
    for (int i = 0; i < 4; ++i) {
        eq.schedule(usToTicks(4) * Tick(i + 1), [&host, &peer0,
                                                 send_on] {
            send_on(*host.drv0, peer0.id(), 5, 2 << 20);
        });
        eq.schedule(usToTicks(4) * Tick(i + 1) + usToTicks(1),
                    [&host, &peer1, send_on] {
            send_on(*host.drv1, peer1.id(), 6, 3 << 20);
        });
    }
    eq.run();
    EXPECT_EQ(got0, 4);
    EXPECT_EQ(got1, 4);
    EXPECT_EQ(host.dev0->txFrames(), 4u);
    EXPECT_EQ(host.dev1->txFrames(), 4u);

    // Each driver memoized its own zone on its flow's socket: the
    // post-first-packet sends came from the right regions.
    auto *drv0 = host.drv0.get();
    auto *drv1 = host.drv1.get();
    EXPECT_EQ(drv0->slowPathTx() + drv0->fastPathTx(), 4u);
    EXPECT_EQ(drv1->slowPathTx() + drv1->fastPathTx(), 4u);
    EXPECT_GE(drv0->fastPathTx(), 2u);
    EXPECT_GE(drv1->fastPathTx(), 2u);
}

TEST(MultiNetDimm, RxOnBothDevicesClonesLocally)
{
    EventQueue eq;
    DualHost host(eq);
    SystemConfig peer_cfg = DualHost::makeCfg();

    Node peer0(eq, "peer0", peer_cfg, 10);
    Node peer1(eq, "peer1", peer_cfg, 11);
    EthLink l0(eq, "l0", host.cfg.eth), l1(eq, "l1", host.cfg.eth);
    l0.connect(host.dev0.get(), peer0.endpoint());
    l1.connect(host.dev1.get(), peer1.endpoint());
    NetDimmDevice *d0 = host.dev0.get(), *d1 = host.dev1.get();
    d0->setWire([&l0, d0](const PacketPtr &p) { l0.send(d0, p); });
    d1->setWire([&l1, d1](const PacketPtr &p) { l1.send(d1, p); });
    peer0.connectTo(l0);
    peer1.connectTo(l1);

    int got = 0;
    host.drv0->setRxHandler([&](const PacketPtr &, Tick) { ++got; });
    host.drv1->setRxHandler([&](const PacketPtr &, Tick) { ++got; });

    for (int i = 0; i < 3; ++i) {
        eq.schedule(usToTicks(5) * Tick(i + 1), [&peer0, i] {
            peer0.sendPacket(peer0.makeTxPacket(1460, 1, 7));
        });
        eq.schedule(usToTicks(5) * Tick(i + 1) + usToTicks(2),
                    [&peer1, i] {
            peer1.sendPacket(peer1.makeTxPacket(1460, 1, 8));
        });
    }
    eq.run();
    EXPECT_EQ(got, 6);
    // Clones happened on each device's own local DRAM, in FPM.
    EXPECT_EQ(host.dev0->rowCloneEngine().fpmClones(), 3u);
    EXPECT_EQ(host.dev1->rowCloneEngine().fpmClones(), 3u);
}
