/**
 * @file
 * Integration tests for MemorySystem: channel routing, stripe-split
 * joins, NetDIMM region attachment and per-source latency stats.
 */

#include <gtest/gtest.h>

#include "mem/MemorySystem.hh"

using namespace netdimm;

namespace
{

/** Minimal region handler that records accesses and completes them. */
struct StubTarget : MemTarget
{
    EventQueue &eq;
    std::vector<MemRequestPtr> seen;
    Tick latency = nsToTicks(100);

    explicit StubTarget(EventQueue &e) : eq(e) {}

    void
    access(const MemRequestPtr &req) override
    {
        seen.push_back(req);
        Tick done = eq.curTick() + latency;
        eq.schedule(done, [req, done] {
            if (req->onDone)
                req->onDone(done);
        });
    }
};

struct Fixture
{
    EventQueue eq;
    SystemConfig cfg;
    MemorySystem mem;

    Fixture() : mem(eq, "mem", cfg) {}

    Tick
    blockingAccess(Addr addr, std::uint32_t size, bool write = false)
    {
        Tick done = 0;
        auto req = makeMemRequest(addr, size, write, MemSource::HostCpu,
                                  [&](Tick t) { done = t; });
        mem.access(req);
        eq.run();
        return done;
    }
};

} // namespace

TEST(MemorySystem, BuildsOneControllerPerChannel)
{
    Fixture f;
    EXPECT_EQ(f.mem.numChannels(), f.cfg.hostMem.channels);
}

TEST(MemorySystem, SingleStripeAccessUsesOneChannel)
{
    Fixture f;
    f.blockingAccess(0, 64);
    EXPECT_EQ(f.mem.channel(0).beatsServiced(), 1u);
    EXPECT_EQ(f.mem.channel(1).beatsServiced(), 0u);
    f.blockingAccess(256, 64);
    EXPECT_EQ(f.mem.channel(1).beatsServiced(), 1u);
}

TEST(MemorySystem, CrossStripeAccessSplitsAndJoins)
{
    Fixture f;
    // 512B spanning two stripes: half the beats per channel, exactly
    // one completion.
    int completions = 0;
    auto req = makeMemRequest(0, 512, false, MemSource::HostCpu,
                              [&](Tick) { ++completions; });
    f.mem.access(req);
    f.eq.run();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(f.mem.channel(0).beatsServiced(), 4u);
    EXPECT_EQ(f.mem.channel(1).beatsServiced(), 4u);
}

TEST(MemorySystem, InterleavingSpreadsSequentialTraffic)
{
    Fixture f;
    for (int i = 0; i < 64; ++i) {
        auto req = makeMemRequest(Addr(i) * 256, 64, false,
                                  MemSource::HostCpu, nullptr);
        f.mem.access(req);
    }
    f.eq.run();
    EXPECT_EQ(f.mem.channel(0).beatsServiced(), 32u);
    EXPECT_EQ(f.mem.channel(1).beatsServiced(), 32u);
}

TEST(MemorySystem, NetDimmRegionRoutesToHandler)
{
    Fixture f;
    StubTarget stub(f.eq);
    Addr base = f.mem.attachNetDimm(1ull << 24, 0, stub);
    EXPECT_EQ(base, f.cfg.hostMem.totalBytes());

    Tick done = f.blockingAccess(base + 4096, 64);
    ASSERT_EQ(stub.seen.size(), 1u);
    EXPECT_EQ(stub.seen[0]->addr, base + 4096);
    EXPECT_EQ(done, stub.latency);
}

TEST(MemorySystem, SecondNetDimmGetsAdjacentWindow)
{
    Fixture f;
    StubTarget s0(f.eq), s1(f.eq);
    Addr b0 = f.mem.attachNetDimm(1ull << 20, 0, s0);
    Addr b1 = f.mem.attachNetDimm(1ull << 20, 1, s1);
    EXPECT_EQ(b1, b0 + (1ull << 20));
    f.blockingAccess(b1, 64);
    EXPECT_TRUE(s0.seen.empty());
    EXPECT_EQ(s1.seen.size(), 1u);
}

TEST(MemorySystem, HostCpuReadLatencyAggregates)
{
    Fixture f;
    EXPECT_DOUBLE_EQ(f.mem.hostCpuReadLatencyNs(), 0.0);
    f.blockingAccess(0, 64);
    f.blockingAccess(1024, 64);
    double lat = f.mem.hostCpuReadLatencyNs();
    EXPECT_GT(lat, 20.0);
    EXPECT_LT(lat, 200.0);
}

TEST(MemorySystem, WriteCompletionsAreDelivered)
{
    Fixture f;
    Tick done = f.blockingAccess(64, 128, /*write=*/true);
    EXPECT_GT(done, 0u);
}
