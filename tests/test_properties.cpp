/**
 * @file
 * Property-based suites: invariants checked over randomized inputs
 * and parameter grids rather than single examples.
 */

#include <gtest/gtest.h>

#include "kernel/AllocCache.hh"
#include "mem/RowClone.hh"
#include "net/Link.hh"
#include "workload/LatencyHarness.hh"

using namespace netdimm;

// ---------------------------------------------------------------------
// Address decoding: randomized round trips.
// ---------------------------------------------------------------------

TEST(PropertyDecoder, RandomAddressesDecodeConsistently)
{
    DramGeometry geo;
    geo.channels = 1;
    geo.ranksPerChannel = 2;
    DimmDecoder dec(geo);
    Random rng(99);
    std::uint64_t cap = geo.channelBytes();

    for (int i = 0; i < 20000; ++i) {
        Addr a = rng.uniformInt(0, cap - 1);
        DramAddress da = dec.decode(a);
        EXPECT_LT(da.rank, geo.ranksPerChannel);
        EXPECT_LT(da.bank, geo.banksPerDevice);
        EXPECT_LT(da.subArray, geo.subArraysPerBank);
        EXPECT_LT(da.row, geo.rowsPerSubArray);
        EXPECT_LT(da.column, geo.rowBytes);

        // Same cacheline -> identical coordinates.
        DramAddress db = dec.decode(a - (a % 64));
        EXPECT_TRUE(da.sameSubArray(db));
        EXPECT_EQ(da.rowId(geo), db.rowId(geo));

        // The Fig. 9(c) invariant at any random page: one stride
        // later lands on the same bank + sub-array -- unless this
        // page occupies the sub-array's *last* slot, where the walk
        // moves on to the next sub-array group.
        Addr page = a - (a % pageBytes);
        if (page + dec.sameSubArrayStride() < cap) {
            DramAddress dp = dec.decode(page);
            std::uint32_t rows_per_page = pageBytes / geo.rowBytes;
            std::uint32_t slot = dp.row / rows_per_page;
            bool last_slot = slot + 1 == dec.pagesPerSubArray();
            DramAddress dc =
                dec.decode(page + dec.sameSubArrayStride());
            if (!last_slot) {
                EXPECT_TRUE(dp.sameSubArray(dc));
            } else {
                EXPECT_FALSE(dp.sameSubArray(dc));
            }
        }
    }
}

// ---------------------------------------------------------------------
// RowClone: mode selection consistent with the decoded relation for
// random page pairs.
// ---------------------------------------------------------------------

TEST(PropertyRowClone, ModeMatchesDecodedRelation)
{
    EventQueue eq;
    SystemConfig cfg;
    DramGeometry geo;
    geo.channels = 1;
    geo.ranksPerChannel = 2;
    MemoryController mc(eq, "mc", cfg.dram, geo, cfg.memCtrl);
    RowCloneEngine rc(eq, "rc", mc, cfg.netdimm.rowClone);
    const DimmDecoder &dec = mc.decoder();
    Random rng(7);
    std::uint64_t pages = geo.channelBytes() / pageBytes;

    for (int i = 0; i < 20000; ++i) {
        Addr src = rng.uniformInt(0, pages - 1) * pageBytes;
        Addr dst = rng.uniformInt(0, pages - 1) * pageBytes;
        DramAddress s = dec.decode(src), d = dec.decode(dst);
        CloneMode m = rc.selectMode(src, dst);
        if (s.sameSubArray(d) && s.row != d.row) {
            EXPECT_EQ(m, CloneMode::FPM);
        } else if (s.rank == d.rank && s.bank != d.bank) {
            EXPECT_EQ(m, CloneMode::PSM);
        } else {
            EXPECT_EQ(m, CloneMode::GCM);
        }
        // Latency ordering holds for any pair at any size.
        std::uint32_t bytes =
            std::uint32_t(rng.uniformInt(1, 4096));
        Tick lat = rc.idealLatency(src, dst, bytes);
        EXPECT_GT(lat, 0u);
    }
}

// ---------------------------------------------------------------------
// allocCache: hinted takes stay on the hint's sub-array while fast.
// ---------------------------------------------------------------------

TEST(PropertyAllocCache, FastHintedTakesShareSubArray)
{
    EventQueue eq;
    DramGeometry geo;
    geo.channels = 1;
    geo.ranksPerChannel = 2;
    NetdimmZoneAllocator zone(1ull << 32, geo);
    AllocCache cache(eq, "ac", zone, 2);
    Random rng(13);

    for (int i = 0; i < 2000; ++i) {
        bool fast = false;
        Addr hint = cache.takeAny(fast);
        bool fast2 = false;
        Addr page = cache.take(hint, fast2);
        if (fast2) {
            EXPECT_TRUE(zone.sameSubArray(hint, page));
        }
        // Return both so the pool survives the sweep.
        cache.release(page);
        cache.release(hint);
        eq.run();
    }
}

// ---------------------------------------------------------------------
// End-to-end grid: conservation and determinism across NICs, sizes
// and seeds.
// ---------------------------------------------------------------------

struct GridParam
{
    NicKind kind;
    std::uint32_t bytes;
};

class PropertyE2E : public ::testing::TestWithParam<GridParam>
{
};

TEST_P(PropertyE2E, EveryPacketDeliveredExactlyOnce)
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = GetParam().kind;
    EventQueue eq;
    Node a(eq, "a", cfg, 0), b(eq, "b", cfg, 1);
    EthLink link(eq, "link", cfg.eth);
    link.connect(a.endpoint(), b.endpoint());
    a.connectTo(link);
    b.connectTo(link);

    std::map<std::uint64_t, int> seen;
    b.setReceiveHandler(
        [&](const PacketPtr &pkt, Tick) { seen[pkt->id]++; });

    const int n = 25;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < n; ++i) {
        eq.schedule(usToTicks(3) * Tick(i + 1), [&, i] {
            PacketPtr pkt = a.makeTxPacket(GetParam().bytes, b.id(),
                                           1 + (i % 4));
            ids.push_back(pkt->id);
            a.sendPacket(pkt);
        });
    }
    eq.run();
    EXPECT_EQ(seen.size(), std::size_t(n));
    for (std::uint64_t id : ids)
        EXPECT_EQ(seen[id], 1) << "packet " << id;
}

TEST_P(PropertyE2E, DeterministicAcrossRuns)
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = GetParam().kind;
    LatencyHarness h(cfg, GetParam().kind);
    PingResult r1 = h.run(GetParam().bytes, 12, 4);
    PingResult r2 = h.run(GetParam().bytes, 12, 4);
    EXPECT_DOUBLE_EQ(r1.totalUs, r2.totalUs);
    for (std::size_t c = 0; c < numLatComps; ++c)
        EXPECT_DOUBLE_EQ(r1.compUs[c], r2.compUs[c]);
}

TEST_P(PropertyE2E, BreakdownComponentsNonNegativeAndBounded)
{
    setQuiet(true);
    SystemConfig cfg;
    PingResult r =
        LatencyHarness(cfg, GetParam().kind).run(GetParam().bytes, 10, 4);
    for (std::size_t c = 0; c < numLatComps; ++c) {
        EXPECT_GE(r.compUs[c], 0.0);
        EXPECT_LE(r.compUs[c], r.totalUs);
    }
    EXPECT_LE(r.pcieUs, r.totalUs);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PropertyE2E,
    ::testing::Values(GridParam{NicKind::Discrete, 64},
                      GridParam{NicKind::Discrete, 1460},
                      GridParam{NicKind::DiscreteZeroCopy, 512},
                      GridParam{NicKind::Integrated, 64},
                      GridParam{NicKind::Integrated, 1460},
                      GridParam{NicKind::IntegratedZeroCopy, 512},
                      GridParam{NicKind::NetDimm, 64},
                      GridParam{NicKind::NetDimm, 512},
                      GridParam{NicKind::NetDimm, 1460},
                      GridParam{NicKind::NetDimm, 4096}),
    [](const ::testing::TestParamInfo<GridParam> &info) {
        std::string n = nicKindName(info.param.kind);
        for (auto &c : n)
            if (c == '.')
                c = '_';
        return n + "_" + std::to_string(info.param.bytes);
    });

// ---------------------------------------------------------------------
// Seed sensitivity: different seeds perturb only the polling phase,
// so means stay within a tight band.
// ---------------------------------------------------------------------

TEST(PropertySeeds, MeansStableAcrossSeeds)
{
    setQuiet(true);
    std::vector<double> totals;
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 17ull}) {
        SystemConfig cfg;
        cfg.seed = seed;
        totals.push_back(
            LatencyHarness(cfg, NicKind::NetDimm).run(256).totalUs);
    }
    double lo = *std::min_element(totals.begin(), totals.end());
    double hi = *std::max_element(totals.begin(), totals.end());
    EXPECT_LT((hi - lo) / lo, 0.05);
}
