/**
 * @file
 * Unit tests for the fluid flow model (DESIGN.md §17): exact
 * piecewise-linear backlog integration, the solver's rate ledger
 * against closed-form expectations, saturation fixed point,
 * packet<->fluid handoff conservation, fidelity classification, and
 * the idle-background byte-identity guarantee.
 */

#include <gtest/gtest.h>

#include "flow/FidelityManager.hh"
#include "net/Switch.hh"

using namespace netdimm;

namespace
{

/** 40 Gbps in wire bytes per tick (1 tick = 1 ps). */
constexpr double kCapBps = 40.0 / 8000.0;

EthConfig
testEth(std::uint32_t queue_frames, std::uint32_t ecn_frames)
{
    EthConfig eth;
    eth.switchQueueFrames = queue_frames;
    eth.ecnThresholdFrames = ecn_frames;
    return eth;
}

} // namespace

// -- FluidLink: exact integration ---------------------------------------

TEST(FluidLink, SubCapacityArrivalsPassThroughWithZeroBacklog)
{
    FluidLink l("l", testEth(0, 0), 1460);
    l.setFluidArrivalGbps(20.0);
    l.advanceTo(1000000); // 1 us
    // 20 Gbps for 1 us = 2500 wire bytes, all delivered in-window.
    EXPECT_DOUBLE_EQ(l.arrivedWireBytes(), 2500.0);
    EXPECT_DOUBLE_EQ(l.deliveredWireBytes(), 2500.0);
    EXPECT_DOUBLE_EQ(l.backlogWireBytes(), 0.0);
    EXPECT_DOUBLE_EQ(l.deliveredShare(), 1.0);
    EXPECT_DOUBLE_EQ(l.droppedShare(), 0.0);
}

TEST(FluidLink, OverCapacityArrivalsAccumulateExactBacklog)
{
    FluidLink l("l", testEth(0, 0), 1460);
    l.setFluidArrivalGbps(60.0);
    l.advanceTo(1000000);
    // Net (60-40) Gbps for 1 us = 2500 wire bytes of backlog; the
    // transmitter is busy the whole window: 40 Gbps * 1 us = 5000.
    EXPECT_DOUBLE_EQ(l.arrivedWireBytes(), 7500.0);
    EXPECT_DOUBLE_EQ(l.deliveredWireBytes(), 5000.0);
    EXPECT_DOUBLE_EQ(l.backlogWireBytes(), 2500.0);
}

TEST(FluidLink, DrainSplitsAtTheZeroCrossing)
{
    FluidLink l("l", testEth(0, 0), 1460);
    l.setFluidArrivalGbps(60.0);
    l.advanceTo(1000000); // leaves 2500 B of backlog
    l.setFluidArrivalGbps(0.0);
    l.advanceTo(2000000);
    // 2500 B drain at 40 Gbps in exactly 500000 ticks, then idle:
    // the window delivers only the leftover backlog.
    EXPECT_DOUBLE_EQ(l.backlogWireBytes(), 0.0);
    EXPECT_DOUBLE_EQ(l.deliveredWireBytes(), 7500.0);
    EXPECT_DOUBLE_EQ(l.deliveredShare(), 1.0);
}

TEST(FluidLink, CapCrossingTailDropsTheExcess)
{
    // Cap = 2 reference frames = 2 * 1484 = 2968 wire bytes.
    FluidLink l("l", testEth(2, 0), 1460);
    l.setFluidArrivalGbps(80.0);
    l.advanceTo(1000000);
    // Net +40 Gbps fills the cap at t = 2968/0.005 = 593600 ticks;
    // everything arriving above capacity after that drops.
    EXPECT_DOUBLE_EQ(l.backlogWireBytes(), 2968.0);
    EXPECT_DOUBLE_EQ(l.droppedWireBytes(), 0.005 * (1000000 - 593600));
    EXPECT_DOUBLE_EQ(l.arrivedWireBytes(), 10000.0);
    // Conservation: arrived == delivered + dropped + backlog.
    EXPECT_DOUBLE_EQ(l.deliveredWireBytes() + l.droppedWireBytes() +
                         l.backlogWireBytes(),
                     l.arrivedWireBytes());
}

TEST(FluidLink, EcnThresholdComparesFrameGranularBacklog)
{
    FluidLink l("l", testEth(0, 2), 1460);
    l.setFluidArrivalGbps(60.0);
    l.advanceTo(1000000); // backlog 2500 B < 2 frames (2968 B)
    EXPECT_FALSE(l.congested());
    l.advanceTo(2000000); // backlog 5000 B >= 2968 B
    EXPECT_TRUE(l.congested());
    // The lagged view: at the first round boundary the link was not
    // yet past the threshold.
    EXPECT_FALSE(l.congestedAt(1000000));
    EXPECT_TRUE(l.congestedAt(2000000));
}

// -- FluidSolver: ledger vs closed form ---------------------------------

TEST(FluidSolver, UncongestedFlowDeliversAtExactlyItsRate)
{
    EventQueue eq;
    FluidSolver solver(eq, "fluid", 0); // default 55 us rounds
    FluidLink &l = solver.addLink("l", testEth(0, 0), 1460);

    TransportConfig cfg;
    cfg.lineRateGbps = 10.0; // well under the 40 Gbps link
    std::uint64_t total = 125000; // = 100 us at 10 Gbps
    bool done = false;
    Tick doneTick = 0;
    FluidFlow &f = solver.addFlow(1, cfg, {&l}, total);
    f.onComplete = [&](const FluidFlow &ff) {
        done = true;
        doneTick = ff.doneTick;
    };

    solver.start(usToTicks(1000));
    eq.run();

    // No congestion anywhere: the ledger advances by rate * dt per
    // round, so completion lands on the first round boundary at or
    // after the closed-form finish time (100 us -> round at 110 us).
    EXPECT_TRUE(done);
    EXPECT_EQ(doneTick, 2 * TransportConfig{}.rateIncreaseInterval);
    EXPECT_DOUBLE_EQ(solver.totalDeliveredBytes(), double(total));
    EXPECT_DOUBLE_EQ(l.backlogWireBytes(), 0.0);
    EXPECT_EQ(solver.rateCuts(), 0u);
}

TEST(FluidSolver, OversubscribedSharesAreProportionalAndExact)
{
    // Open-loop fixed point (no ECN, no cap): two constant-rate
    // flows jointly oversubscribe the link, so the solver's share
    // accounting must hand each flow a pool-proportional slice and
    // conserve every byte between the ledgers and the link backlog.
    EventQueue eq;
    FluidSolver solver(eq, "fluid", 0);
    FluidLink &l = solver.addLink("l", testEth(0, 0), 1460);

    TransportConfig a, b;
    a.lineRateGbps = 30.0;
    b.lineRateGbps = 10.0;
    FluidFlow &fa = solver.addFlow(1, a, {&l}, 0);
    FluidFlow &fb = solver.addFlow(2, b, {&l}, 0);

    Tick horizon = usToTicks(1000);
    solver.start(horizon);
    eq.run();

    // The link is busy from the first instant, so it delivers at
    // exactly capacity; the overflow accumulates as backlog.
    double capacityBytes = kCapBps * double(horizon);
    double arrWire = 40.0 * l.wireFactor() / 8000.0 * double(horizon);
    EXPECT_NEAR(l.deliveredWireBytes(), capacityBytes, 1.0);
    EXPECT_NEAR(l.backlogWireBytes(), arrWire - capacityBytes, 1.0);
    // Shares are proportional to the offered rates, 3:1.
    EXPECT_NEAR(fa.deliveredBytes / fb.deliveredBytes, 3.0, 1e-9);
    // Ledger <-> link conservation (payload vs wire units).
    EXPECT_NEAR((fa.deliveredBytes + fb.deliveredBytes) *
                    l.wireFactor(),
                l.deliveredWireBytes(), 1.0);
    EXPECT_EQ(solver.rateCuts(), 0u);
}

TEST(FluidSolver, EcnFeedbackRegulatesASaturatedLink)
{
    EventQueue eq;
    FluidSolver solver(eq, "fluid", 0);
    FluidLink &l = solver.addLink("l", testEth(0, 64), 1460);

    TransportConfig cfg; // 40 Gbps line rate, DCQCN defaults
    // Warm-start at the fair share: the test measures the regulated
    // cycle, not the 4x-line-rate cold-start transient.
    DcqcnState seed;
    seed.init(cfg);
    seed.rateGbps = seed.targetGbps = 10.0;
    seed.alpha = 0.2;
    for (std::uint64_t id = 1; id <= 4; ++id)
        solver.addFlow(id, cfg, {&l}, 0, &seed); // open-ended flows

    Tick horizon = usToTicks(10000);
    solver.start(horizon);
    eq.run();

    // ECN echoes (sampled with the packet domain's feedback lag)
    // must engage and bound the backlog; the cut/drain/recover cycle
    // trades some utilization for the bounded queue, exactly like
    // DCQCN with a handful of synchronized flows does.
    double capacityBytes = kCapBps * double(horizon);
    EXPECT_GT(l.deliveredWireBytes(), 0.70 * capacityBytes);
    EXPECT_LE(l.deliveredWireBytes(), capacityBytes + 1.0);
    EXPECT_GT(solver.rateCuts(), 0u);
    // The regulated backlog ends in the neighbourhood of the ECN
    // threshold instead of growing without bound.
    EXPECT_LT(l.backlogWireBytes(), 20.0 * l.ecnWireBytes());
}

// -- Handoff conservation -----------------------------------------------

TEST(FidelityManager, PromoteConservesTheByteLedgerExactly)
{
    EventQueue eq;
    FluidSolver solver(eq, "fluid", 0);
    // A slow 4 Gbps link under a 40 Gbps flow builds backlog fast.
    EthConfig eth = testEth(0, 0);
    eth.gbps = 4.0;
    FluidLink &l = solver.addLink("l", eth, 1460);

    TransportConfig cfg;
    const std::uint64_t total = 1000000;
    solver.addFlow(1, cfg, {&l}, total);
    solver.start(usToTicks(300));
    eq.run();

    FidelityPolicy pol;
    pol.rttEstimate = usToTicks(25);
    FidelityManager mgr(pol);
    std::uint64_t delivered = 0;
    FlowHandoff h = mgr.promote(solver, 1, delivered);

    EXPECT_GT(delivered, 0u);
    EXPECT_GT(h.bytesInFlight, 0u);
    EXPECT_EQ(delivered + h.bytesInFlight + h.bytesUnsent, total);
    // The in-flight share is capped at one rate*RTT.
    EXPECT_LE(double(h.bytesInFlight),
              h.cc.rateGbps / 8000.0 * double(pol.rttEstimate) + 1.0);
    EXPECT_EQ(mgr.promotions(), 1u);
    EXPECT_EQ(solver.findFlow(1), nullptr);
}

namespace
{

/** A TransportFlow wired sender-to-receiver over one EthLink. */
struct WiredFlow
{
    EventQueue eq;
    EthConfig eth;
    TransportConfig cfg;
    EthLink link;
    struct Ep : NetEndpoint
    {
        TransportFlow *flow = nullptr;
        bool senderSide = false;
        void
        deliver(const PacketPtr &pkt) override
        {
            if (senderSide)
                flow->onSenderReceive(pkt);
            else
                flow->onReceiverReceive(pkt);
        }
    } sendEp, recvEp;
    std::unique_ptr<TransportFlow> flow;

    WiredFlow() : link(eq, "link", eth)
    {
        cfg.segmentBytes = 1000;
        flow = std::make_unique<TransportFlow>(eq, "flow", cfg, 9);
        sendEp.flow = flow.get();
        sendEp.senderSide = true;
        recvEp.flow = flow.get();
        link.connect(&sendEp, &recvEp);
        flow->bindSender(
            [](std::uint32_t bytes, std::uint64_t fid) {
                PacketPtr p = makePacket(bytes, 0, 1);
                p->flowId = fid;
                return p;
            },
            [this](const PacketPtr &p) { link.send(&sendEp, p); });
        flow->bindReceiver(
            [](std::uint32_t bytes, std::uint64_t fid) {
                PacketPtr p = makePacket(bytes, 1, 0);
                p->flowId = fid;
                p->isAck = true;
                return p;
            },
            [this](const PacketPtr &p) { link.send(&recvEp, p); });
    }
};

} // namespace

TEST(FidelityManager, DemoteMidFlightConservesBytesIntoTheSolver)
{
    WiredFlow w;
    const std::uint64_t total = 100000;
    w.flow->send(total);
    // Stop the packet domain mid-flight.
    w.eq.schedule(usToTicks(10), [&] {
        ASSERT_FALSE(w.flow->complete());
        EventQueue eq2; // fluid side gets its own clock
        FluidSolver solver(eq2, "fluid", 0);
        FluidLink &l = solver.addLink("l", testEth(0, 0), 1000);

        FidelityManager mgr(FidelityPolicy{});
        FluidFlow &ff = mgr.demote(solver, *w.flow, {&l});

        // exportHandoff's contract: delivered + in-flight + unsent
        // == enqueued; the fluid flow inherits exactly the remainder.
        EXPECT_TRUE(w.flow->detached());
        EXPECT_EQ(std::uint64_t(ff.totalBytes) +
                      w.flow->deliveredBytes(),
                  total);
        EXPECT_DOUBLE_EQ(ff.cc.rateGbps,
                         w.flow->config().lineRateGbps);

        // The fluid side finishes the remainder to the byte.
        solver.start(usToTicks(100000));
        eq2.run();
        EXPECT_DOUBLE_EQ(solver.totalDeliveredBytes(),
                         double(ff.totalBytes));
        EXPECT_EQ(mgr.demotions(), 1u);
    });
    w.eq.run();
}

TEST(FidelityManager, PromoteThenPacketFinishConservesEndToEnd)
{
    // Fluid phase: congested 4 Gbps link, stop after 300 us.
    EventQueue eq;
    FluidSolver solver(eq, "fluid", 0);
    EthConfig eth = testEth(0, 0);
    eth.gbps = 4.0;
    FluidLink &l = solver.addLink("l", eth, 1000);
    TransportConfig cfg;
    cfg.segmentBytes = 1000;
    const std::uint64_t total = 200000;
    solver.addFlow(5, cfg, {&l}, total);
    solver.start(usToTicks(300));
    eq.run();

    FidelityPolicy pol;
    pol.rttEstimate = usToTicks(25);
    FidelityManager mgr(pol);
    std::uint64_t fluidDelivered = 0;
    FlowHandoff h = mgr.promote(solver, 5, fluidDelivered);

    // Packet phase: a fresh flow imports the handoff and drains it.
    WiredFlow w;
    w.flow->importHandoff(h);
    w.flow->send(h.bytesRemaining());
    w.flow->close();
    w.eq.run();

    EXPECT_TRUE(w.flow->complete());
    EXPECT_EQ(fluidDelivered + w.flow->deliveredBytes(), total);
}

// -- Classification -----------------------------------------------------

TEST(FidelityManager, ClassifiesByInterestWitnessAndHotWindow)
{
    FidelityPolicy pol;
    pol.mode = FidelityMode::Hybrid;
    pol.interestNodes = {7};
    pol.hotWindows = {{usToTicks(100), usToTicks(200)}};
    pol.witnessEvery = 4;
    FidelityManager mgr(pol);

    // Interest node pins to packet-level, either direction.
    EXPECT_EQ(mgr.classify(1, 7, 3, 0), FlowFidelity::PacketLevel);
    EXPECT_EQ(mgr.classify(2, 3, 7, 0), FlowFidelity::PacketLevel);
    // Witness sample: every 4th flow id.
    EXPECT_EQ(mgr.classify(8, 1, 2, 0), FlowFidelity::PacketLevel);
    EXPECT_EQ(mgr.classify(9, 1, 2, 0), FlowFidelity::FluidLevel);
    // Hot window: [100 us, 200 us).
    EXPECT_EQ(mgr.classify(10, 1, 2, usToTicks(150)),
              FlowFidelity::PacketLevel);
    EXPECT_EQ(mgr.classify(10, 1, 2, usToTicks(200)),
              FlowFidelity::FluidLevel);
    // Forced modes override everything.
    FidelityManager pktOnly(FidelityPolicy{FidelityMode::Packet});
    EXPECT_EQ(pktOnly.classify(9, 1, 2, 0),
              FlowFidelity::PacketLevel);
    FidelityManager fluidOnly(FidelityPolicy{FidelityMode::Fluid});
    EXPECT_EQ(fluidOnly.classify(8, 7, 2, 0),
              FlowFidelity::FluidLevel);
}

// -- Idle-background byte identity --------------------------------------

namespace
{

/** One sender behind a switch; records (seq, tick) deliveries. */
struct SwitchScenario
{
    EventQueue eq;
    EthConfig eth;
    TransportConfig cfg;
    Switch sw;
    EthLink access, bottleneck;
    struct SendEp : NetEndpoint
    {
        TransportFlow *flow = nullptr;
        void
        deliver(const PacketPtr &pkt) override
        {
            flow->onSenderReceive(pkt);
        }
    } sendEp;
    struct RecvEp : NetEndpoint
    {
        EventQueue *eq = nullptr;
        TransportFlow *flow = nullptr;
        std::vector<std::pair<std::uint64_t, Tick>> got;
        void
        deliver(const PacketPtr &pkt) override
        {
            got.emplace_back(pkt->seq, eq->curTick());
            flow->onReceiverReceive(pkt);
        }
    } recvEp;
    std::unique_ptr<TransportFlow> flow;
    FluidSolver solver;

    explicit SwitchScenario(bool idle_bg)
        : sw(eq, "sw", eth), access(eq, "access", eth),
          bottleneck(eq, "bottleneck", eth),
          solver(eq, "fluid", 0)
    {
        cfg.segmentBytes = 1000;
        access.connect(&sendEp, &sw);
        bottleneck.connect(&sw, &recvEp);
        sw.addRoute(1, &bottleneck);
        sw.addRoute(0, &access);
        recvEp.eq = &eq;
        if (idle_bg) {
            // Install the fluid hooks with zero fluid flows: the
            // `--fidelity packet` byte-identity guarantee.
            FluidLink &l = solver.addLink("bg", eth, 1000);
            bottleneck.setBackgroundSource(&l);
            sw.setBackgroundSource(&bottleneck, &l);
            solver.start(usToTicks(2000));
        }
        flow = std::make_unique<TransportFlow>(eq, "flow", cfg, 3);
        sendEp.flow = flow.get();
        recvEp.flow = flow.get();
        flow->bindSender(
            [](std::uint32_t bytes, std::uint64_t fid) {
                PacketPtr p = makePacket(bytes, 0, 1);
                p->flowId = fid;
                return p;
            },
            [this](const PacketPtr &p) { access.send(&sendEp, p); });
        flow->bindReceiver(
            [](std::uint32_t bytes, std::uint64_t fid) {
                PacketPtr p = makePacket(bytes, 1, 0);
                p->flowId = fid;
                p->isAck = true;
                return p;
            },
            [this](const PacketPtr &p) {
                bottleneck.send(&recvEp, p);
            });
        flow->send(64000);
        flow->close();
    }
};

} // namespace

TEST(FluidBackground, IdleHooksAreByteInvisibleToPacketRuns)
{
    SwitchScenario plain(false), inert(true);
    plain.eq.run();
    inert.eq.run();
    ASSERT_TRUE(plain.flow->complete());
    ASSERT_TRUE(inert.flow->complete());
    ASSERT_EQ(plain.recvEp.got.size(), inert.recvEp.got.size());
    for (std::size_t i = 0; i < plain.recvEp.got.size(); ++i) {
        EXPECT_EQ(plain.recvEp.got[i].first,
                  inert.recvEp.got[i].first);
        EXPECT_EQ(plain.recvEp.got[i].second,
                  inert.recvEp.got[i].second);
    }
    EXPECT_EQ(plain.flow->completeTick(), inert.flow->completeTick());
}
