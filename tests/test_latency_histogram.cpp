/**
 * @file
 * Unit tests for the shared log-binned latency histogram: exactness
 * in the linear region, the relative-error bound above it, merge and
 * digest determinism, and the SLO fraction estimator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "harness/LatencyHistogram.hh"
#include "sim/Random.hh"

using namespace netdimm;

TEST(LatencyHistogram, EmptyIsInert)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAbove(10.0), 0.0);
}

TEST(LatencyHistogram, ExactBelowLinearRange)
{
    // With subBits = 7 every value below 128 gets its own bucket, so
    // percentiles over small values carry no binning error at all.
    LatencyHistogram h(7);
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.minValue(), 1u);
    EXPECT_EQ(h.maxValue(), 100u);
    EXPECT_EQ(h.sum(), 5050u);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    // Rank-based: p50 of 1..100 is the 50th sample.
    EXPECT_NEAR(h.percentile(0.50), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
}

TEST(LatencyHistogram, RelativeErrorBoundHolds)
{
    // Single large values read back within 2^-(subBits-1) relative
    // error across several octaves.
    for (std::uint32_t bits : {4u, 7u, 10u}) {
        double bound = std::pow(2.0, -double(bits - 1));
        for (std::uint64_t v :
             {std::uint64_t(1) << 10, std::uint64_t(12345678),
              std::uint64_t(1) << 40, std::uint64_t(987654321098ull)}) {
            LatencyHistogram h(bits);
            h.sample(v);
            // min==max==v clamps single-sample reads exactly...
            EXPECT_DOUBLE_EQ(h.percentile(0.5), double(v));
            // ...so probe the bucket resolution with a spread pair.
            LatencyHistogram g(bits);
            g.sample(v);
            g.sample(v * 2);
            double p25 = g.percentile(0.25);
            EXPECT_LE(std::abs(p25 - double(v)) / double(v),
                      bound + 1e-12)
                << "bits=" << bits << " v=" << v;
        }
    }
}

TEST(LatencyHistogram, MergeMatchesCombinedPopulation)
{
    Random rng(12345);
    LatencyHistogram a, b, whole;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v =
            std::uint64_t(rng.exponential(50000.0)) + 1;
        (i % 2 ? a : b).sample(v);
        whole.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_EQ(a.sum(), whole.sum());
    EXPECT_EQ(a.minValue(), whole.minValue());
    EXPECT_EQ(a.maxValue(), whole.maxValue());
    // Bucket-for-bucket identical, not merely close:
    EXPECT_EQ(a.digest(), whole.digest());
    EXPECT_DOUBLE_EQ(a.percentile(0.99), whole.percentile(0.99));
}

TEST(LatencyHistogram, DigestDistinguishesPopulations)
{
    LatencyHistogram a, b;
    for (std::uint64_t v : {100u, 200u, 300u}) {
        a.sample(v);
        b.sample(v);
    }
    EXPECT_EQ(a.digest(), b.digest());
    b.sample(301);
    EXPECT_NE(a.digest(), b.digest());

    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.digest(), LatencyHistogram().digest());
}

TEST(LatencyHistogram, FractionAboveIsExactInLinearRange)
{
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v);
    // Threshold between exact buckets: strictly-above is exact.
    EXPECT_NEAR(h.fractionAbove(90.5), 0.10, 1e-9);
    EXPECT_NEAR(h.fractionAbove(0.0), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(h.fractionAbove(100.0), 0.0);
    EXPECT_DOUBLE_EQ(h.fractionAbove(1e18), 0.0);
}

TEST(LatencyHistogram, FractionWithinDeadline)
{
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v);
    // Complement of fractionAbove: within-deadline counts v <= D.
    EXPECT_NEAR(h.fractionWithinDeadline(90), 0.90, 1e-9);
    EXPECT_NEAR(h.fractionWithinDeadline(50), 0.50, 1e-9);
    EXPECT_DOUBLE_EQ(h.fractionWithinDeadline(100), 1.0);
    EXPECT_DOUBLE_EQ(h.fractionWithinDeadline(1'000'000), 1.0);
    // Deadline 0 means "no deadline": everything qualifies.
    EXPECT_DOUBLE_EQ(h.fractionWithinDeadline(0), 1.0);
    // Empty histogram served nothing within any deadline.
    LatencyHistogram e;
    EXPECT_DOUBLE_EQ(e.fractionWithinDeadline(100), 0.0);
    EXPECT_DOUBLE_EQ(e.fractionWithinDeadline(0), 0.0);
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity)
{
    LatencyHistogram h, empty;
    for (std::uint64_t v : {10u, 20u, 4000u, 90000u})
        h.sample(v);
    const std::string before = h.digest();

    // Populated <- empty: nothing changes, bucket-for-bucket.
    h.merge(empty);
    EXPECT_EQ(h.digest(), before);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.minValue(), 10u);
    EXPECT_EQ(h.maxValue(), 90000u);

    // Empty <- populated: adopts the population exactly.
    LatencyHistogram e2;
    e2.merge(h);
    EXPECT_EQ(e2.digest(), before);
    EXPECT_EQ(e2.count(), h.count());
    EXPECT_EQ(e2.sum(), h.sum());
    EXPECT_EQ(e2.minValue(), h.minValue());
    EXPECT_EQ(e2.maxValue(), h.maxValue());

    // Empty <- empty stays inert.
    LatencyHistogram e3, e4;
    e3.merge(e4);
    EXPECT_EQ(e3.count(), 0u);
    EXPECT_EQ(e3.digest(), LatencyHistogram().digest());
    EXPECT_DOUBLE_EQ(e3.fractionWithinDeadline(100), 0.0);
}

TEST(LatencyHistogram, MergeIsOrderIndependentAndAssociative)
{
    // Property backing the PDES stats contract (DESIGN.md §16): the
    // driver merges per-shard histograms in shard order, but the
    // result must not depend on that order or grouping — otherwise
    // re-sharding a topology would change the reported digest even
    // with identical samples. Randomized populations across the
    // linear and log regions, compared by exact digest.
    Random rng(1234);
    for (int trial = 0; trial < 20; ++trial) {
        LatencyHistogram parts[4];
        for (int p = 0; p < 4; ++p) {
            int n = int(rng.uniformInt(1, 200));
            for (int i = 0; i < n; ++i)
                parts[p].sample(
                    std::uint64_t(rng.exponential(5e5)));
        }

        // Reference: left-fold in index order.
        LatencyHistogram fwd;
        for (const LatencyHistogram &p : parts)
            fwd.merge(p);

        // Order-independence: reversed fold.
        LatencyHistogram rev;
        for (int p = 3; p >= 0; --p)
            rev.merge(parts[p]);
        EXPECT_EQ(rev.digest(), fwd.digest()) << "trial " << trial;

        // Associativity: (0+1) + (2+3) as pre-merged groups.
        LatencyHistogram left, right, grouped;
        left.merge(parts[0]);
        left.merge(parts[1]);
        right.merge(parts[2]);
        right.merge(parts[3]);
        grouped.merge(left);
        grouped.merge(right);
        EXPECT_EQ(grouped.digest(), fwd.digest())
            << "trial " << trial;

        // And the fold really is the combined population.
        std::uint64_t count = 0, sum = 0;
        for (const LatencyHistogram &p : parts) {
            count += p.count();
            sum += p.sum();
        }
        EXPECT_EQ(fwd.count(), count);
        EXPECT_EQ(fwd.sum(), sum);
    }
}

TEST(LatencyHistogram, PercentilesMonotone)
{
    Random rng(99);
    LatencyHistogram h;
    for (int i = 0; i < 10000; ++i)
        h.sample(std::uint64_t(rng.exponential(3e6)) + 100);
    double last = 0.0;
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        double p = h.percentile(q);
        EXPECT_GE(p, last) << "q=" << q;
        last = p;
    }
    EXPECT_DOUBLE_EQ(h.percentile(0.0), double(h.minValue()));
    EXPECT_DOUBLE_EQ(h.percentile(1.0), double(h.maxValue()));
}
