/**
 * @file
 * Unit tests for the time base conversions.
 */

#include <gtest/gtest.h>

#include "sim/Ticks.hh"

using namespace netdimm;

TEST(Ticks, UnitRelations)
{
    EXPECT_EQ(tickPerNs, 1000u * tickPerPs);
    EXPECT_EQ(tickPerUs, 1000u * tickPerNs);
    EXPECT_EQ(tickPerMs, 1000u * tickPerUs);
    EXPECT_EQ(tickPerSec, 1000u * tickPerMs);
}

TEST(Ticks, Conversions)
{
    EXPECT_EQ(nsToTicks(1), 1000u);
    EXPECT_EQ(usToTicks(1.5), 1500000u);
    EXPECT_DOUBLE_EQ(ticksToNs(2500), 2.5);
    EXPECT_DOUBLE_EQ(ticksToUs(2500000), 2.5);
    EXPECT_DOUBLE_EQ(ticksToSec(tickPerSec), 1.0);
}

TEST(Ticks, RoundTripNs)
{
    for (double ns : {0.5, 1.0, 12.25, 100.0, 99999.0})
        EXPECT_NEAR(ticksToNs(nsToTicks(ns)), ns, 0.001);
}

TEST(Ticks, CyclePeriod)
{
    // 3.4 GHz -> 294 ps (truncated).
    EXPECT_EQ(cyclePeriod(3.4), 294u);
    // 1 GHz -> exactly 1000 ps.
    EXPECT_EQ(cyclePeriod(1.0), 1000u);
}

TEST(Ticks, SerializationTicks)
{
    // 64 bytes at 40 Gbps: 512 bits / 40 = 12.8 ns.
    EXPECT_EQ(serializationTicks(64, 40.0), 12800u);
    // 1500 bytes at 40 Gbps: 300 ns.
    EXPECT_EQ(serializationTicks(1500, 40.0), 300000u);
    // Doubling the rate halves the time.
    EXPECT_EQ(serializationTicks(1024, 10.0),
              2 * serializationTicks(1024, 20.0));
}

TEST(Ticks, MaxTickIsNever)
{
    EXPECT_GT(maxTick, tickPerSec * 3600ull * 24ull * 365ull);
}
