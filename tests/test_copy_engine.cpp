/**
 * @file
 * Unit tests for the windowed CPU memcpy model: MLP-bounded latency,
 * contention sensitivity and traffic generation.
 */

#include <gtest/gtest.h>

#include "kernel/CopyEngine.hh"
#include "mem/MemorySystem.hh"

using namespace netdimm;

namespace
{

struct Fixture
{
    EventQueue eq;
    SystemConfig cfg;
    MemorySystem mem;
    Llc llc;
    CopyEngine copy;

    Fixture()
        : mem(eq, "mem", cfg), llc(eq, "llc", cfg.llc, cfg.cpu, mem),
          copy(eq, "copy", cfg, llc)
    {}

    Tick
    blockingCopy(Addr dst, Addr src, std::uint32_t bytes)
    {
        Tick done = 0;
        copy.copy(dst, src, bytes, [&](Tick t) { done = t; });
        eq.run();
        return done;
    }
};

} // namespace

TEST(CopyEngine, SingleLineCopyCompletes)
{
    Fixture f;
    Tick done = f.blockingCopy(1 << 20, 2 << 20, 64);
    EXPECT_GT(done, f.cfg.sw.copySetup);
    EXPECT_EQ(f.copy.copies(), 1u);
    EXPECT_EQ(f.copy.bytesCopied(), 64u);
}

TEST(CopyEngine, LatencyScalesWithSize)
{
    Fixture f;
    Tick small = f.blockingCopy(1 << 20, 2 << 20, 256);
    Tick t0 = f.eq.curTick();
    Tick large = f.blockingCopy(4 << 20, 8 << 20, 4096) - t0;
    EXPECT_GT(large, small);
    // 64 lines vs 4 lines: at least 4x (MLP overlaps within rounds).
    EXPECT_GT(large, 3 * small);
}

TEST(CopyEngine, WarmSourceStillPaysDestinationFills)
{
    Fixture f;
    // Warm both src (reads) and dst (write-allocate) ...
    f.blockingCopy(1 << 20, 2 << 20, 2048);
    Tick t0 = f.eq.curTick();
    Tick warm = f.blockingCopy(1 << 20, 2 << 20, 2048) - t0;
    // ... so the repeat copy is much faster (LLC hits).
    t0 = f.eq.curTick();
    Tick cold = f.blockingCopy(16 << 20, 12 << 20, 2048) - t0;
    EXPECT_LT(warm, cold);
}

TEST(CopyEngine, GeneratesMemoryTraffic)
{
    Fixture f;
    std::uint64_t before = f.mem.channel(0).beatsServiced() +
                           f.mem.channel(1).beatsServiced();
    f.blockingCopy(1 << 20, 2 << 20, 4096);
    f.eq.run();
    std::uint64_t after = f.mem.channel(0).beatsServiced() +
                          f.mem.channel(1).beatsServiced();
    // 64 source fills + 64 destination RFO fills at least.
    EXPECT_GE(after - before, 128u);
}

TEST(CopyEngine, SlowsDownUnderMemoryPressure)
{
    Fixture f;
    Tick idle = f.blockingCopy(1 << 20, 2 << 20, 4096);

    // Saturate both channels with background traffic, then copy.
    for (int i = 0; i < 512; ++i) {
        auto req = makeMemRequest(Addr(64 << 20) + Addr(i) * 4096,
                                  4096, false, MemSource::Other,
                                  nullptr);
        f.mem.access(req);
    }
    Tick t0 = f.eq.curTick();
    Tick loaded = f.blockingCopy(32 << 20, 48 << 20, 4096) - t0;
    EXPECT_GT(loaded, idle);
}

TEST(CopyEngine, ManyConcurrentCopiesAllComplete)
{
    Fixture f;
    int done = 0;
    for (int i = 0; i < 20; ++i) {
        f.copy.copy(Addr(1 << 20) + Addr(i) * 8192,
                    Addr(32 << 20) + Addr(i) * 8192, 1460,
                    [&](Tick) { ++done; });
    }
    f.eq.run();
    EXPECT_EQ(done, 20);
    EXPECT_EQ(f.copy.copies(), 20u);
}
