/**
 * @file
 * End-to-end tests for the request-reliability layer (DESIGN.md §14):
 * per-RPC deadlines as pure metadata, client retry/backoff with
 * deadline-aware suppression, hedging, bounded admission with
 * load-shedding policies, and handler-fault recovery accounting
 * through a full serving cell.
 */

#include <gtest/gtest.h>

#include "workload/RpcServingLoad.hh"

using namespace netdimm;

namespace
{

ServingParams
smallCell(ServingPlacement placement)
{
    ServingParams p;
    p.placement = placement;
    p.qps = 0.5e6;
    p.requests = 300;
    p.warmup = 50;
    return p;
}

} // namespace

TEST(Reliability, DeadlineAloneIsPureMetadata)
{
    // A deadline with no retries, no hedging, and no shedding must
    // not perturb the simulation by a single tick: goodput is read
    // off the same reply stream.
    SystemConfig base;
    ServingParams plain = smallCell(ServingPlacement::NetDimmHost);
    ServingParams dl = plain;
    dl.deadline = usToTicks(100); // generous: everything qualifies

    ServingResult a = runServing(base, plain);
    ServingResult b = runServing(base, dl);
    EXPECT_EQ(a.rtt.digest(), b.rtt.digest());
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(b.goodRpcs, b.rtt.count());
    // Without a deadline every measured reply counts as good.
    EXPECT_EQ(a.goodRpcs, a.rtt.count());
}

TEST(Reliability, TightDeadlineZeroesGoodputWithoutLosingReplies)
{
    SystemConfig base;
    ServingParams p = smallCell(ServingPlacement::NetDimmHost);
    p.deadline = usToTicks(1); // far below the minimum host RTT

    ServingResult r = runServing(base, p);
    EXPECT_EQ(r.completed, r.sent); // replies still arrive...
    EXPECT_EQ(r.goodRpcs, 0u);      // ...but none beat the deadline
    EXPECT_EQ(r.rtt.count(), 300u);
}

TEST(Reliability, ShortTimeoutRetriesButFirstReplyStillLands)
{
    // Timeout below the minimum RTT: every request is resent at
    // least once, yet the duplicate is harmless — the client keys
    // replies by rpcKey and the first one wins.
    SystemConfig base;
    ServingParams p = smallCell(ServingPlacement::NetDimmHost);
    p.maxRetries = 2;
    p.retryTimeout = usToTicks(2);

    ServingResult r = runServing(base, p);
    EXPECT_GT(r.timeouts, 0u);
    EXPECT_GT(r.retries, 0u);
    // Every flight ends exactly one way: first reply wins, or the
    // client exhausts its retries and abandons. Nothing double-counts.
    EXPECT_EQ(r.completed + r.abandoned, r.sent);
    EXPECT_EQ(r.lost, r.abandoned);
    EXPECT_GT(r.completed, 0u);
}

TEST(Reliability, BlownDeadlineSuppressesRetries)
{
    // Retrying a request whose deadline already passed only poisons
    // the server queue: the client must abandon instead of resend.
    SystemConfig base;
    ServingParams p = smallCell(ServingPlacement::NetDimmHost);
    p.deadline = usToTicks(1);
    p.maxRetries = 3;
    p.retryTimeout = usToTicks(2); // fires with the deadline blown

    ServingResult r = runServing(base, p);
    EXPECT_GT(r.timeouts, 0u);
    EXPECT_EQ(r.retries, 0u); // suppression: never resent
    EXPECT_EQ(r.abandoned, r.sent);
    EXPECT_EQ(r.goodRpcs, 0u);
}

TEST(Reliability, HedgingRacesDuplicatesHarmlessly)
{
    SystemConfig base;
    ServingParams p = smallCell(ServingPlacement::NetDimmHost);
    p.hedge = true;
    p.hedgeFloor = usToTicks(1); // below min RTT: every RPC hedges

    ServingResult r = runServing(base, p);
    EXPECT_GT(r.hedges, 0u);
    EXPECT_EQ(r.completed, r.sent);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.rtt.count(), 300u);
}

TEST(Reliability, BoundedAdmissionShedsUnderOverload)
{
    // Offered load ~4x the host pool's capacity: the bounded queue
    // must shed instead of building an unbounded backlog.
    SystemConfig base;
    ServingParams p = smallCell(ServingPlacement::NetDimmHost);
    p.qps = 4e6;
    p.deadline = usToTicks(30);
    p.admitDepth = 4;
    p.shed = ShedPolicy::Tail;
    p.dropExpiredAtDequeue = true;
    p.dequeueMargin = usToTicks(5);

    ServingResult r = runServing(base, p);
    EXPECT_GT(r.shedQueueFull, 0u);
    EXPECT_GT(r.lost, 0u);             // shed requests never reply
    EXPECT_LT(r.goodRpcs, r.sent);     // but survivors are on time:
    EXPECT_GT(r.goodRpcs, 0u);         // goodput does not collapse
}

TEST(Reliability, GetsFirstPolicyEvictsQueuedGets)
{
    SystemConfig base;
    ServingParams p = smallCell(ServingPlacement::NetDimmHost);
    p.qps = 4e6;
    p.deadline = usToTicks(30);
    p.admitDepth = 4;
    p.shed = ShedPolicy::GetsFirst;
    p.dropExpiredAtDequeue = true;
    p.dequeueMargin = usToTicks(5);

    ServingResult r = runServing(base, p);
    // PUTs displace queued GETs when the queue is full.
    EXPECT_GT(r.shedGets, 0u);
    EXPECT_GT(r.goodRpcs, 0u);
}

TEST(Reliability, HandlerFaultRecoveryClosesLedgerEndToEnd)
{
    // Aggressive fault rates on the handler cores: every faulted
    // frame must be recovered onto the host path exactly once and
    // still produce a reply — no request is lost to a fault.
    SystemConfig base;
    base.faults.enabled = true;
    base.faults.handlerHangProb = 0.01;
    base.faults.handlerCrashProb = 0.05;
    base.faults.kvCorruptProb = 0.05;
    base.faults.handlerStallTimeout = usToTicks(5);
    base.faults.handlerWatchdogPeriod = usToTicks(2);

    ServingParams p = smallCell(ServingPlacement::NetDimmHandlers);
    ServingResult r = runServing(base, p);

    EXPECT_EQ(r.completed, r.sent);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_EQ(r.faultFallbacks, r.faultsInjected);
    EXPECT_EQ(r.faultsRecovered, r.faultsInjected);
    EXPECT_EQ(r.faultsUnrecovered, 0u);
    EXPECT_TRUE(r.ledgerClosed);
    EXPECT_GT(r.hostServed, 0u); // the fallbacks were host-served
    EXPECT_EQ(r.handlerHangFaults + r.handlerCrashFaults +
                  r.handlerCorruptNacks,
              r.faultsInjected);
}

TEST(Reliability, ZeroRateFaultWiringIsByteIdentical)
{
    // Enabling the fault framework with every handler probability at
    // zero must reproduce the unwired cell bit-for-bit: fault draws
    // come from a private stream and never touch the schedule.
    SystemConfig off;
    SystemConfig wired;
    wired.faults.enabled = true;

    ServingParams p = smallCell(ServingPlacement::NetDimmHandlers);
    ServingResult a = runServing(off, p);
    ServingResult b = runServing(wired, p);
    EXPECT_EQ(a.rtt.digest(), b.rtt.digest());
    EXPECT_EQ(a.handlerServed, b.handlerServed);
    EXPECT_EQ(b.faultsInjected, 0u);
    EXPECT_TRUE(b.ledgerClosed);
}
