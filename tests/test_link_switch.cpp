/**
 * @file
 * Unit tests for the Ethernet link, switch and clos fabric models.
 */

#include <gtest/gtest.h>

#include "net/Switch.hh"

using namespace netdimm;

namespace
{

struct SinkEndpoint : NetEndpoint
{
    EventQueue &eq;
    std::vector<std::pair<PacketPtr, Tick>> got;

    explicit SinkEndpoint(EventQueue &e) : eq(e) {}

    void
    deliver(const PacketPtr &pkt) override
    {
        got.emplace_back(pkt, eq.curTick());
    }
};

} // namespace

TEST(EthLink, FrameTicksIncludeFramingAndMinSize)
{
    EventQueue eq;
    EthConfig cfg;
    EthLink link(eq, "l", cfg);
    // A 10B payload pads to the 64B minimum frame + 24B framing.
    EXPECT_EQ(link.frameTicks(10), serializationTicks(88, 40.0));
    EXPECT_EQ(link.frameTicks(1500), serializationTicks(1524, 40.0));
}

TEST(EthLink, DeliversToOppositeEndWithWireLatency)
{
    EventQueue eq;
    EthConfig cfg;
    EthLink link(eq, "l", cfg);
    SinkEndpoint a(eq), b(eq);
    link.connect(&a, &b);

    PacketPtr pkt = makePacket(1000, 0, 1);
    link.send(&a, pkt);
    eq.run();

    ASSERT_EQ(b.got.size(), 1u);
    EXPECT_TRUE(a.got.empty());
    Tick expect = link.frameTicks(1000) + cfg.propagation +
                  cfg.macLatency;
    EXPECT_EQ(b.got[0].second, expect);
    EXPECT_EQ(pkt->lat.get(LatComp::Wire), expect);
}

TEST(EthLink, DirectionBIsIndependent)
{
    EventQueue eq;
    EthConfig cfg;
    EthLink link(eq, "l", cfg);
    SinkEndpoint a(eq), b(eq);
    link.connect(&a, &b);
    link.send(&b, makePacket(64, 1, 0));
    eq.run();
    EXPECT_EQ(a.got.size(), 1u);
}

TEST(EthLink, BackToBackFramesSerialize)
{
    EventQueue eq;
    EthConfig cfg;
    EthLink link(eq, "l", cfg);
    SinkEndpoint a(eq), b(eq);
    link.connect(&a, &b);

    link.send(&a, makePacket(1500, 0, 1));
    link.send(&a, makePacket(1500, 0, 1));
    eq.run();
    ASSERT_EQ(b.got.size(), 2u);
    EXPECT_EQ(b.got[1].second - b.got[0].second,
              link.frameTicks(1500));
    EXPECT_EQ(link.framesCarried(), 2u);
    EXPECT_EQ(link.bytesCarried(), 3000u);
}

TEST(Switch, RoutesByDestination)
{
    EventQueue eq;
    EthConfig cfg;
    Switch sw(eq, "sw", cfg.switchLatency);
    EthLink l1(eq, "l1", cfg), l2(eq, "l2", cfg);
    SinkEndpoint n1(eq), n2(eq);
    l1.connect(&sw, &n1);
    l2.connect(&sw, &n2);
    sw.addRoute(1, &l1);
    sw.addRoute(2, &l2);

    sw.deliver(makePacket(100, 0, 2));
    sw.deliver(makePacket(100, 0, 1));
    eq.run();
    EXPECT_EQ(n1.got.size(), 1u);
    EXPECT_EQ(n2.got.size(), 1u);
    EXPECT_EQ(sw.framesForwarded(), 2u);
}

TEST(Switch, AddsPortLatency)
{
    EventQueue eq;
    EthConfig cfg;
    Switch sw(eq, "sw", nsToTicks(100));
    EthLink l(eq, "l", cfg);
    SinkEndpoint n(eq);
    l.connect(&sw, &n);
    sw.setDefaultRoute(&l);

    sw.deliver(makePacket(64, 0, 9));
    eq.run();
    ASSERT_EQ(n.got.size(), 1u);
    EXPECT_EQ(n.got[0].second,
              nsToTicks(100) + l.frameTicks(64) + cfg.propagation +
                  cfg.macLatency);
}

TEST(Switch, NoRouteDropsAndCounts)
{
    EventQueue eq;
    Switch sw(eq, "sw", 0);
    // Unknown destination with no default route: the frame is
    // dropped and counted, not a simulator abort.
    sw.deliver(makePacket(64, 0, 5));
    sw.deliver(makePacket(64, 0, 6));
    eq.run();
    EXPECT_EQ(sw.dropsNoRoute(), 2u);
    EXPECT_EQ(sw.framesForwarded(), 0u);
}

TEST(Switch, DefaultRouteCatchesUnknownDestinations)
{
    EventQueue eq;
    EthConfig cfg;
    Switch sw(eq, "sw", cfg.switchLatency);
    EthLink def(eq, "def", cfg), known(eq, "known", cfg);
    SinkEndpoint nd(eq), nk(eq);
    def.connect(&sw, &nd);
    known.connect(&sw, &nk);
    sw.addRoute(1, &known);
    sw.setDefaultRoute(&def);

    sw.deliver(makePacket(128, 0, 1)); // routed
    sw.deliver(makePacket(128, 0, 9)); // unknown -> default
    eq.run();
    EXPECT_EQ(nk.got.size(), 1u);
    EXPECT_EQ(nd.got.size(), 1u);
    EXPECT_EQ(sw.dropsNoRoute(), 0u);
}

TEST(Switch, FiniteEgressQueueTailDrops)
{
    EventQueue eq;
    EthConfig cfg;
    // Queue of 4 frames, no ECN; zero port latency so all ten frames
    // contend for the egress at the same tick.
    Switch sw(eq, "sw", 0, /*queue_frames=*/4, /*ecn_threshold=*/0);
    EthLink l(eq, "l", cfg);
    SinkEndpoint n(eq);
    l.connect(&sw, &n);
    sw.setDefaultRoute(&l);

    for (int i = 0; i < 10; ++i)
        sw.deliver(makePacket(1460, 0, 1));
    eq.run();

    EXPECT_EQ(n.got.size(), 4u);
    EXPECT_EQ(sw.dropsQueue(), 6u);
    EXPECT_EQ(sw.framesForwarded(), 4u);
    EXPECT_EQ(sw.maxQueueDepth(), 4u);
    // Accepted frames drain at the link's serialization rate.
    ASSERT_EQ(n.got.size(), 4u);
    EXPECT_EQ(n.got[1].second - n.got[0].second,
              l.frameTicks(1460));
}

TEST(Switch, EcnMarksAboveThreshold)
{
    EventQueue eq;
    EthConfig cfg;
    Switch sw(eq, "sw", 0, /*queue_frames=*/8, /*ecn_threshold=*/2);
    EthLink l(eq, "l", cfg);
    SinkEndpoint n(eq);
    l.connect(&sw, &n);
    sw.setDefaultRoute(&l);

    for (int i = 0; i < 6; ++i)
        sw.deliver(makePacket(1460, 0, 1));
    eq.run();

    // Frames enqueued at occupancy 0 and 1 pass unmarked; occupancy
    // 2..5 is at/above the threshold.
    ASSERT_EQ(n.got.size(), 6u);
    EXPECT_EQ(sw.ecnMarks(), 4u);
    EXPECT_FALSE(n.got[0].first->ecnMarked);
    EXPECT_FALSE(n.got[1].first->ecnMarked);
    for (std::size_t i = 2; i < 6; ++i)
        EXPECT_TRUE(n.got[i].first->ecnMarked) << "frame " << i;
    EXPECT_EQ(sw.dropsQueue(), 0u);
}

TEST(Switch, EcnMarkDequeueReportsDepthAtDeparture)
{
    // ecnMarkDequeue moves the marking decision to dequeue time: a
    // frame is marked against the occupancy it leaves behind (itself
    // included), not the occupancy it arrived into. Six frames
    // arriving back-to-back: the first departs into an almost-empty
    // system unmarked, the middle ones depart with >= 2 frames still
    // present, and the *last* one finds the queue drained behind it
    // — unmarked, where enqueue marking would have marked it.
    EventQueue eq;
    EthConfig cfg;
    cfg.switchQueueFrames = 8;
    cfg.ecnThresholdFrames = 2;
    cfg.ecnMarkDequeue = true;
    Switch sw(eq, "sw", cfg);
    EthLink l(eq, "l", cfg);
    SinkEndpoint n(eq);
    l.connect(&sw, &n);
    sw.setDefaultRoute(&l);

    for (int i = 0; i < 6; ++i)
        sw.deliver(makePacket(1460, 0, 1));
    eq.run();

    ASSERT_EQ(n.got.size(), 6u);
    EXPECT_EQ(sw.ecnMarks(), 4u);
    EXPECT_FALSE(n.got[0].first->ecnMarked);
    for (std::size_t i = 1; i < 5; ++i)
        EXPECT_TRUE(n.got[i].first->ecnMarked) << "frame " << i;
    EXPECT_FALSE(n.got[5].first->ecnMarked);
    EXPECT_EQ(sw.dropsQueue(), 0u);
}

TEST(Switch, UnboundedQueueNeverDrops)
{
    EventQueue eq;
    EthConfig cfg;
    Switch sw(eq, "sw", 0, /*queue_frames=*/0, /*ecn_threshold=*/0);
    EthLink l(eq, "l", cfg);
    SinkEndpoint n(eq);
    l.connect(&sw, &n);
    sw.setDefaultRoute(&l);
    for (int i = 0; i < 200; ++i)
        sw.deliver(makePacket(1460, 0, 1));
    eq.run();
    EXPECT_EQ(n.got.size(), 200u);
    EXPECT_EQ(sw.dropsQueue(), 0u);
    EXPECT_EQ(sw.ecnMarks(), 0u);
}

TEST(Locality, HopCountsAreMonotonic)
{
    EXPECT_EQ(localityHops(TrafficLocality::IntraRack), 1u);
    EXPECT_EQ(localityHops(TrafficLocality::IntraCluster), 3u);
    EXPECT_EQ(localityHops(TrafficLocality::IntraDatacenter), 5u);
    EXPECT_EQ(localityHops(TrafficLocality::InterDatacenter), 7u);
    EXPECT_LT(localityPropagation(TrafficLocality::IntraRack),
              localityPropagation(TrafficLocality::InterDatacenter));
}

TEST(ClosFabric, PathDelayScalesWithHopsAndSwitchLatency)
{
    EventQueue eq;
    EthConfig cfg;
    ClosFabric fab(eq, "fab", cfg);
    Tick rack = fab.pathDelay(256, TrafficLocality::IntraRack);
    Tick cluster = fab.pathDelay(256, TrafficLocality::IntraCluster);
    Tick dc = fab.pathDelay(256, TrafficLocality::IntraDatacenter);
    EXPECT_LT(rack, cluster);
    EXPECT_LT(cluster, dc);

    EthConfig slow = cfg;
    slow.switchLatency = nsToTicks(200);
    ClosFabric fab2(eq, "fab2", slow);
    EXPECT_EQ(fab2.pathDelay(256, TrafficLocality::IntraCluster),
              cluster + 3 * nsToTicks(100));
}

TEST(ClosFabric, ForwardsToAttachedEndpoint)
{
    EventQueue eq;
    EthConfig cfg;
    ClosFabric fab(eq, "fab", cfg);
    SinkEndpoint n(eq);
    fab.attach(3, &n);

    PacketPtr pkt = makePacket(512, 0, 3);
    fab.forward(pkt, TrafficLocality::IntraCluster);
    eq.run();
    ASSERT_EQ(n.got.size(), 1u);
    EXPECT_EQ(n.got[0].second,
              fab.pathDelay(512, TrafficLocality::IntraCluster));
    EXPECT_EQ(pkt->lat.get(LatComp::Wire), n.got[0].second);
}

TEST(ClosFabric, DeliverUsesDefaultLocality)
{
    EventQueue eq;
    EthConfig cfg;
    ClosFabric fab(eq, "fab", cfg);
    SinkEndpoint n(eq);
    fab.attach(1, &n);
    fab.setDefaultLocality(TrafficLocality::IntraRack);
    fab.deliver(makePacket(64, 0, 1));
    eq.run();
    ASSERT_EQ(n.got.size(), 1u);
    EXPECT_EQ(n.got[0].second,
              fab.pathDelay(64, TrafficLocality::IntraRack));
}
