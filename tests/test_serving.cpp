/**
 * @file
 * End-to-end tests for the KV serving harness: request accounting,
 * placement behaviour (handler offload vs host processing), the
 * zero-handler golden equivalence, and run-to-run determinism.
 */

#include <gtest/gtest.h>

#include "workload/RpcServingLoad.hh"

using namespace netdimm;

namespace
{

ServingParams
smallCell(ServingPlacement placement)
{
    ServingParams p;
    p.placement = placement;
    p.qps = 0.5e6;
    p.requests = 300;
    p.warmup = 50;
    return p;
}

} // namespace

TEST(RpcServing, HostPlacementServesEveryRequest)
{
    SystemConfig base;
    ServingResult r = runServing(base, smallCell(
                                           ServingPlacement::NetDimmHost));
    EXPECT_EQ(r.sent, 350u);
    EXPECT_EQ(r.completed, 350u);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.rtt.count(), 300u); // warmup excluded
    EXPECT_EQ(r.hostServed, r.sent);
    EXPECT_EQ(r.handlerServed, 0u);
    EXPECT_GT(r.rtt.minValue(), 0u);
    EXPECT_GT(r.simulatedUs, 0.0);
}

TEST(RpcServing, HandlerPlacementOffloadsAndWins)
{
    SystemConfig base;
    ServingResult host = runServing(base, smallCell(
                                              ServingPlacement::NetDimmHost));
    ServingResult hand = runServing(
        base, smallCell(ServingPlacement::NetDimmHandlers));

    EXPECT_EQ(hand.completed, hand.sent);
    // Every request is a GET/PUT, so with an installed table the
    // handler cores serve all of them (no overflow at this load).
    EXPECT_EQ(hand.handlerServed, hand.sent);
    EXPECT_EQ(hand.hostServed, 0u);
    EXPECT_GT(hand.handlerBusFraction, 0.0);
    // Offload win: on-DIMM serving beats the host path at p99.
    EXPECT_LT(hand.rtt.percentile(0.99), host.rtt.percentile(0.99));
}

TEST(RpcServing, EmptyMatchTableIsByteIdenticalToPlainNetDimm)
{
    SystemConfig base;
    ServingParams plain = smallCell(ServingPlacement::NetDimmHost);
    ServingParams empty = smallCell(ServingPlacement::NetDimmHandlers);
    empty.emptyMatchTable = true;

    ServingResult a = runServing(base, plain);
    ServingResult b = runServing(base, empty);
    EXPECT_EQ(a.rtt.digest(), b.rtt.digest());
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(b.handlerServed, 0u);
}

TEST(RpcServing, DeterministicAcrossRuns)
{
    SystemConfig base;
    ServingParams p = smallCell(ServingPlacement::NetDimmHandlers);
    ServingResult a = runServing(base, p);
    ServingResult b = runServing(base, p);
    EXPECT_EQ(a.rtt.digest(), b.rtt.digest());
    EXPECT_EQ(a.handlerServed, b.handlerServed);
    EXPECT_EQ(a.handlerBusFraction, b.handlerBusFraction);
}
