/**
 * @file
 * End-to-end tests for the KV serving harness: request accounting,
 * placement behaviour (handler offload vs host processing), the
 * zero-handler golden equivalence, run-to-run determinism, and the
 * replicated cluster mode (inert-knob byte identity, crash/failover
 * durability, duplicate-reply suppression).
 */

#include <gtest/gtest.h>

#include "workload/RpcServingLoad.hh"

using namespace netdimm;

namespace
{

ServingParams
smallCell(ServingPlacement placement)
{
    ServingParams p;
    p.placement = placement;
    p.qps = 0.5e6;
    p.requests = 300;
    p.warmup = 50;
    return p;
}

} // namespace

TEST(RpcServing, HostPlacementServesEveryRequest)
{
    SystemConfig base;
    ServingResult r = runServing(base, smallCell(
                                           ServingPlacement::NetDimmHost));
    EXPECT_EQ(r.sent, 350u);
    EXPECT_EQ(r.completed, 350u);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.rtt.count(), 300u); // warmup excluded
    EXPECT_EQ(r.hostServed, r.sent);
    EXPECT_EQ(r.handlerServed, 0u);
    EXPECT_GT(r.rtt.minValue(), 0u);
    EXPECT_GT(r.simulatedUs, 0.0);
}

TEST(RpcServing, HandlerPlacementOffloadsAndWins)
{
    SystemConfig base;
    ServingResult host = runServing(base, smallCell(
                                              ServingPlacement::NetDimmHost));
    ServingResult hand = runServing(
        base, smallCell(ServingPlacement::NetDimmHandlers));

    EXPECT_EQ(hand.completed, hand.sent);
    // Every request is a GET/PUT, so with an installed table the
    // handler cores serve all of them (no overflow at this load).
    EXPECT_EQ(hand.handlerServed, hand.sent);
    EXPECT_EQ(hand.hostServed, 0u);
    EXPECT_GT(hand.handlerBusFraction, 0.0);
    // Offload win: on-DIMM serving beats the host path at p99.
    EXPECT_LT(hand.rtt.percentile(0.99), host.rtt.percentile(0.99));
}

TEST(RpcServing, EmptyMatchTableIsByteIdenticalToPlainNetDimm)
{
    SystemConfig base;
    ServingParams plain = smallCell(ServingPlacement::NetDimmHost);
    ServingParams empty = smallCell(ServingPlacement::NetDimmHandlers);
    empty.emptyMatchTable = true;

    ServingResult a = runServing(base, plain);
    ServingResult b = runServing(base, empty);
    EXPECT_EQ(a.rtt.digest(), b.rtt.digest());
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(b.handlerServed, 0u);
}

TEST(RpcServing, DeterministicAcrossRuns)
{
    SystemConfig base;
    ServingParams p = smallCell(ServingPlacement::NetDimmHandlers);
    ServingResult a = runServing(base, p);
    ServingResult b = runServing(base, p);
    EXPECT_EQ(a.rtt.digest(), b.rtt.digest());
    EXPECT_EQ(a.handlerServed, b.handlerServed);
    EXPECT_EQ(a.handlerBusFraction, b.handlerBusFraction);
}

// -- cluster mode -------------------------------------------------------

TEST(RpcServingCluster, InertClusterKnobsAreByteIdentical)
{
    // cluster.enabled with nodes=1 / replication=1 / crash=0 must be
    // structurally inert: same topology, same event order, same
    // digest as the plain single-server cell. This is the identity
    // the serving_failover golden cell rests on.
    SystemConfig base;
    ServingParams plain = smallCell(ServingPlacement::NetDimmHost);
    ServingParams inert = plain;
    inert.cluster.enabled = true;

    ServingResult a = runServing(base, plain);
    ServingResult b = runServing(base, inert);
    EXPECT_EQ(a.rtt.digest(), b.rtt.digest());
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.hostServed, b.hostServed);
    EXPECT_GT(b.ackedPuts, 0u); // bookkeeping on, behaviour unchanged
    EXPECT_EQ(b.lostAckedWrites, 0u);
}

namespace
{

ServingParams
clusterCell(double crashRate, std::uint32_t r)
{
    ServingParams p = smallCell(ServingPlacement::NetDimmHost);
    p.qps = 1e6;
    p.requests = 800;
    p.warmup = 100;
    p.deadline = usToTicks(120);
    p.retryTimeout = usToTicks(10);
    p.maxRetries = 4;
    p.cluster.enabled = true;
    p.cluster.nodes = 4;
    p.cluster.replication = r;
    p.cluster.crashRatePerSec = crashRate;
    p.cluster.restartDelay = usToTicks(80);
    p.cluster.suspectTicks = usToTicks(60);
    return p;
}

} // namespace

TEST(RpcServingCluster, ReplicatedClusterLosesNoAckedWriteUnderCrashes)
{
    SystemConfig base;
    ServingResult r = runServing(base, clusterCell(4e4, 2));
    EXPECT_GT(r.crashes, 0u) << "cell too quiet to test anything";
    EXPECT_EQ(r.crashes, r.restarts);
    EXPECT_TRUE(r.ledgerClosed);
    EXPECT_GT(r.ackedPuts, 0u);
    EXPECT_EQ(r.lostAckedWrites, 0u);
    EXPECT_EQ(r.staleReads, 0u);
    EXPECT_GT(r.failoverRedirects, 0u); // clients routed around death
    EXPECT_GT(r.resyncBytes, 0u);       // reboots re-synced shards
    EXPECT_GT(r.goodRpcs, 0u);
}

TEST(RpcServingCluster, DeterministicUnderCrashes)
{
    SystemConfig base;
    ServingParams p = clusterCell(4e4, 2);
    ServingResult a = runServing(base, p);
    ServingResult b = runServing(base, p);
    EXPECT_EQ(a.rtt.digest(), b.rtt.digest());
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.resyncBytes, b.resyncBytes);
    EXPECT_EQ(a.failoverRedirects, b.failoverRedirects);
    EXPECT_EQ(a.duplicateReplies, b.duplicateReplies);
}

TEST(RpcServingCluster, UnreplicatedClusterLosesAckedWritesToCrashes)
{
    // The negative control: R=1 has no surviving replica, so a crash
    // provably loses acknowledged writes -- which is exactly what the
    // durability audit must report.
    SystemConfig base;
    ServingResult r = runServing(base, clusterCell(8e4, 1));
    EXPECT_GT(r.crashes, 0u);
    EXPECT_GT(r.lostAckedWrites, 0u);
}

TEST(RpcServing, LateDuplicateRepliesAreDroppedAndCounted)
{
    // A retry timeout far below the actual RTT makes every request
    // retransmit while the original is still being served; the second
    // reply finds its key already completed and must be dropped by
    // the sequence check, not double-counted.
    SystemConfig base;
    ServingParams p = smallCell(ServingPlacement::NetDimmHost);
    p.qps = 0.2e6;
    p.requests = 200;
    p.warmup = 50;
    p.retryTimeout = usToTicks(1); // << RTT
    // Enough retries that the exponential backoff outlives the real
    // RTT: no flight is abandoned, every request completes exactly
    // once, and the extra sends surface purely as duplicates.
    p.maxRetries = 8;
    ServingResult r = runServing(base, p);
    EXPECT_GT(r.duplicateReplies, 0u);
    EXPECT_EQ(r.completed, r.sent); // each counted exactly once
    EXPECT_EQ(r.rtt.count(), 200u);
}
