/**
 * @file
 * Unit tests for nCache: read-once consume semantics, the header
 * flag, write snooping, and random replacement within full sets.
 */

#include <gtest/gtest.h>

#include "netdimm/NCache.hh"

using namespace netdimm;

namespace
{
NetDimmConfig
smallConfig()
{
    NetDimmConfig cfg;
    cfg.nCacheBytes = 8 * 1024; // 128 lines
    cfg.nCacheAssoc = 4;        // 32 sets
    return cfg;
}
} // namespace

TEST(NCache, MissOnEmpty)
{
    NCache c(smallConfig(), 1);
    auto r = c.consume(0);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(NCache, InsertThenConsumeHitsOnce)
{
    NCache c(smallConfig(), 1);
    c.insert(0, false);
    EXPECT_TRUE(c.probe(0));

    auto first = c.consume(0);
    EXPECT_TRUE(first.hit);
    // Read-once: the line is gone after the first access.
    EXPECT_FALSE(c.probe(0));
    auto second = c.consume(0);
    EXPECT_FALSE(second.hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(NCache, HeaderFlagReportedAndCleared)
{
    NCache c(smallConfig(), 1);
    c.insert(0, /*is_header=*/true);
    c.insert(64, /*is_header=*/false);
    EXPECT_TRUE(c.consume(0).wasHeader);
    EXPECT_FALSE(c.consume(64).wasHeader);
}

TEST(NCache, ReinsertUpdatesHeaderFlag)
{
    NCache c(smallConfig(), 1);
    c.insert(0, false);
    c.insert(0, true); // same line, now a header
    EXPECT_TRUE(c.consume(0).wasHeader);
}

TEST(NCache, LineGranularityWithinCacheline)
{
    NCache c(smallConfig(), 1);
    c.insert(0, true);
    // Any address within the same 64B line hits.
    EXPECT_TRUE(c.probe(63));
    auto r = c.consume(32);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.wasHeader);
}

TEST(NCache, InvalidateDropsCoveredLines)
{
    NCache c(smallConfig(), 1);
    for (Addr a = 0; a < 512; a += 64)
        c.insert(a, false);
    c.invalidate(64, 256); // lines 64..319
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(64));
    EXPECT_FALSE(c.probe(128));
    EXPECT_FALSE(c.probe(256));
    EXPECT_TRUE(c.probe(320));
}

TEST(NCache, FullSetEvictsRandomly)
{
    NetDimmConfig cfg = smallConfig();
    NCache c(cfg, 42);
    std::uint32_t sets = cfg.nCacheBytes / 64 / cfg.nCacheAssoc;
    Addr stride = Addr(sets) * 64;
    // Fill one set beyond capacity.
    for (std::uint32_t i = 0; i < cfg.nCacheAssoc + 3; ++i)
        c.insert(Addr(i) * stride, false);
    EXPECT_EQ(c.evictions(), 3u);
    int resident = 0;
    for (std::uint32_t i = 0; i < cfg.nCacheAssoc + 3; ++i)
        resident += c.probe(Addr(i) * stride);
    EXPECT_EQ(resident, int(cfg.nCacheAssoc));
}

TEST(NCache, CapacityMatchesConfig)
{
    NetDimmConfig cfg;
    cfg.nCacheBytes = 64 * 1024;
    cfg.nCacheAssoc = 8;
    NCache c(cfg, 1);
    EXPECT_EQ(c.lines(), 1024u);
}

TEST(NCache, ConsumeFreesTheWayForReuse)
{
    NetDimmConfig cfg = smallConfig();
    NCache c(cfg, 7);
    std::uint32_t sets = cfg.nCacheBytes / 64 / cfg.nCacheAssoc;
    Addr stride = Addr(sets) * 64;
    for (std::uint32_t i = 0; i < cfg.nCacheAssoc; ++i)
        c.insert(Addr(i) * stride, false);
    c.consume(0); // frees one way
    c.insert(Addr(100) * stride, false);
    EXPECT_EQ(c.evictions(), 0u);
}

// -- occupancy / eviction accounting under sustained RX pressure --------

TEST(NCache, OccupancyTracksInsertsAndConsumes)
{
    NCache c(smallConfig(), 3);
    EXPECT_EQ(c.occupancy(), 0u);
    c.insert(0, true);
    c.insert(64, false);
    EXPECT_EQ(c.occupancy(), 2u);

    // Re-inserting a resident line refreshes it without growing.
    c.insert(0, true);
    EXPECT_EQ(c.occupancy(), 2u);
    EXPECT_EQ(c.reinserts(), 1u);

    // Read-once consume releases the line; a miss changes nothing.
    EXPECT_TRUE(c.consume(0).hit);
    EXPECT_EQ(c.occupancy(), 1u);
    EXPECT_FALSE(c.consume(0).hit);
    EXPECT_EQ(c.occupancy(), 1u);

    // Snooped writes drop residents and count as invalidations.
    c.invalidate(64, 64);
    EXPECT_EQ(c.occupancy(), 0u);
    EXPECT_EQ(c.invalidations(), 1u);
    c.invalidate(64, 64); // nothing left: no double count
    EXPECT_EQ(c.invalidations(), 1u);
}

TEST(NCache, OccupancyNeverExceedsCapacityUnderRxPressure)
{
    // Sustained RX: the nController streams packet lines in far
    // faster than the host drains them, like an incast burst landing
    // in local DRAM. The cache must saturate, not grow.
    NetDimmConfig cfg = smallConfig();
    NCache c(cfg, 99);
    const std::uint32_t cap = c.lines();
    std::uint32_t peak = 0;
    for (std::uint32_t i = 0; i < 8 * cap; ++i) {
        c.insert(Addr(i) * 64, (i % 22) == 0);
        peak = std::max(peak, c.occupancy());
        // A slow host consumes one line for every four inserted.
        if (i % 4 == 3)
            c.consume(Addr(i - 2) * 64);
    }
    EXPECT_LE(peak, cap);
    EXPECT_GE(peak, cap / 2);          // pressure actually filled it
    EXPECT_GE(c.occupancy() + 1, peak); // still saturated at the end
    EXPECT_GT(c.evictions(), 0u);
}

TEST(NCache, AccountingIdentityHoldsUnderChurn)
{
    // occupancy == inserts - reinserts - hits - invalidations -
    // evictions at every step: nothing leaks, nothing double-frees.
    NetDimmConfig cfg = smallConfig();
    NCache c(cfg, 1234);
    auto check = [&c] {
        std::uint64_t freed =
            c.reinserts() + c.hits() + c.invalidations() + c.evictions();
        ASSERT_EQ(std::uint64_t(c.occupancy()), c.inserts() - freed);
    };
    std::uint64_t x = 88172645463325252ull; // xorshift64
    for (int i = 0; i < 20000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        Addr a = Addr(x % 4096) * 64;
        switch (x % 5) {
        case 0:
        case 1:
        case 2:
            c.insert(a, (x & 0x100) != 0);
            break;
        case 3:
            c.consume(a);
            break;
        default:
            c.invalidate(a, 64 + std::uint32_t(x % 3) * 64);
            break;
        }
        check();
    }
    EXPECT_GT(c.evictions(), 0u);
    EXPECT_GT(c.reinserts(), 0u);
    EXPECT_GT(c.invalidations(), 0u);
}
