/**
 * @file
 * Unit tests for nCache: read-once consume semantics, the header
 * flag, write snooping, and random replacement within full sets.
 */

#include <gtest/gtest.h>

#include "netdimm/NCache.hh"

using namespace netdimm;

namespace
{
NetDimmConfig
smallConfig()
{
    NetDimmConfig cfg;
    cfg.nCacheBytes = 8 * 1024; // 128 lines
    cfg.nCacheAssoc = 4;        // 32 sets
    return cfg;
}
} // namespace

TEST(NCache, MissOnEmpty)
{
    NCache c(smallConfig(), 1);
    auto r = c.consume(0);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(NCache, InsertThenConsumeHitsOnce)
{
    NCache c(smallConfig(), 1);
    c.insert(0, false);
    EXPECT_TRUE(c.probe(0));

    auto first = c.consume(0);
    EXPECT_TRUE(first.hit);
    // Read-once: the line is gone after the first access.
    EXPECT_FALSE(c.probe(0));
    auto second = c.consume(0);
    EXPECT_FALSE(second.hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(NCache, HeaderFlagReportedAndCleared)
{
    NCache c(smallConfig(), 1);
    c.insert(0, /*is_header=*/true);
    c.insert(64, /*is_header=*/false);
    EXPECT_TRUE(c.consume(0).wasHeader);
    EXPECT_FALSE(c.consume(64).wasHeader);
}

TEST(NCache, ReinsertUpdatesHeaderFlag)
{
    NCache c(smallConfig(), 1);
    c.insert(0, false);
    c.insert(0, true); // same line, now a header
    EXPECT_TRUE(c.consume(0).wasHeader);
}

TEST(NCache, LineGranularityWithinCacheline)
{
    NCache c(smallConfig(), 1);
    c.insert(0, true);
    // Any address within the same 64B line hits.
    EXPECT_TRUE(c.probe(63));
    auto r = c.consume(32);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.wasHeader);
}

TEST(NCache, InvalidateDropsCoveredLines)
{
    NCache c(smallConfig(), 1);
    for (Addr a = 0; a < 512; a += 64)
        c.insert(a, false);
    c.invalidate(64, 256); // lines 64..319
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(64));
    EXPECT_FALSE(c.probe(128));
    EXPECT_FALSE(c.probe(256));
    EXPECT_TRUE(c.probe(320));
}

TEST(NCache, FullSetEvictsRandomly)
{
    NetDimmConfig cfg = smallConfig();
    NCache c(cfg, 42);
    std::uint32_t sets = cfg.nCacheBytes / 64 / cfg.nCacheAssoc;
    Addr stride = Addr(sets) * 64;
    // Fill one set beyond capacity.
    for (std::uint32_t i = 0; i < cfg.nCacheAssoc + 3; ++i)
        c.insert(Addr(i) * stride, false);
    EXPECT_EQ(c.evictions(), 3u);
    int resident = 0;
    for (std::uint32_t i = 0; i < cfg.nCacheAssoc + 3; ++i)
        resident += c.probe(Addr(i) * stride);
    EXPECT_EQ(resident, int(cfg.nCacheAssoc));
}

TEST(NCache, CapacityMatchesConfig)
{
    NetDimmConfig cfg;
    cfg.nCacheBytes = 64 * 1024;
    cfg.nCacheAssoc = 8;
    NCache c(cfg, 1);
    EXPECT_EQ(c.lines(), 1024u);
}

TEST(NCache, ConsumeFreesTheWayForReuse)
{
    NetDimmConfig cfg = smallConfig();
    NCache c(cfg, 7);
    std::uint32_t sets = cfg.nCacheBytes / 64 / cfg.nCacheAssoc;
    Addr stride = Addr(sets) * 64;
    for (std::uint32_t i = 0; i < cfg.nCacheAssoc; ++i)
        c.insert(Addr(i) * stride, false);
    c.consume(0); // frees one way
    c.insert(Addr(100) * stride, false);
    EXPECT_EQ(c.evictions(), 0u);
}
