/**
 * @file
 * Integration tests for the NetDIMM buffer device: host-side async
 * reads served by nCache vs the local DRAM, the nPrefetcher stream
 * behaviour, the register page, RX/TX pipelines and in-memory
 * cloning.
 */

#include <gtest/gtest.h>

#include "mem/MemorySystem.hh"
#include "netdimm/NetDimmDevice.hh"

using namespace netdimm;

namespace
{

struct Fixture
{
    EventQueue eq;
    SystemConfig cfg;
    MemorySystem mem;
    NetDimmDevice dev;
    Addr base;

    Fixture()
        : mem(eq, "mem", cfg),
          dev(eq, "nd", cfg, mem.channel(0)),
          base(mem.attachNetDimm(dev.mappedBytes(), 0, dev))
    {
        dev.setRegionBase(base);
    }

    Tick
    blockingRead(Addr addr, std::uint32_t size = 64)
    {
        Tick done = 0;
        auto req = makeMemRequest(addr, size, false, MemSource::HostCpu,
                                  [&](Tick t) { done = t; });
        mem.access(req);
        eq.run();
        return done;
    }

    Tick
    blockingWrite(Addr addr, std::uint32_t size = 64)
    {
        Tick done = 0;
        auto req = makeMemRequest(addr, size, true, MemSource::HostCpu,
                                  [&](Tick t) { done = t; });
        mem.access(req);
        eq.run();
        return done;
    }
};

} // namespace

TEST(NetDimmDevice, LocalGeometryIsTwoRankFig9)
{
    SystemConfig cfg;
    DramGeometry g = NetDimmDevice::localGeometry(cfg);
    EXPECT_EQ(g.channels, 1u);
    EXPECT_EQ(g.ranksPerChannel, cfg.netdimm.localRanks);
    Fixture f;
    EXPECT_EQ(f.dev.localBytes(), g.channelBytes());
    EXPECT_EQ(f.dev.mappedBytes(), g.channelBytes() + pageBytes);
}

TEST(NetDimmDevice, NCacheHitIsFasterThanDramRead)
{
    Fixture f;
    // Cold read: comes from the local DRAM.
    Tick cold = f.blockingRead(f.base + 64 * 1024);

    // Park a line in nCache, then read it.
    f.dev.ncache().insert(128 * 1024, true);
    Tick t0 = f.eq.curTick();
    Tick hot = f.blockingRead(f.base + 128 * 1024) - t0;
    EXPECT_LT(hot, cold);
    EXPECT_EQ(hot, f.dev.idealHostReadLatency());
}

TEST(NetDimmDevice, RegisterPageBypassesDram)
{
    Fixture f;
    Tick reg = f.blockingRead(f.dev.regPageAddr());
    Tick t0 = f.eq.curTick();
    Tick dram = f.blockingRead(f.base + (1 << 20)) - t0;
    EXPECT_LT(reg, dram);
}

TEST(NetDimmDevice, HostWriteSnoopsNCache)
{
    Fixture f;
    f.dev.ncache().insert(4096, false);
    ASSERT_TRUE(f.dev.ncache().probe(4096));
    f.blockingWrite(f.base + 4096, 64);
    EXPECT_FALSE(f.dev.ncache().probe(4096));
}

TEST(NetDimmDevice, SequentialPayloadReadsArmPrefetcher)
{
    Fixture f;
    // Simulate an RX packet: nController parked the header line with
    // the flag, payload lines are in DRAM.
    Addr buf = 1 << 20;
    f.dev.ncache().insert(buf, /*is_header=*/true);

    // Header consumption must NOT prefetch.
    f.blockingRead(f.base + buf);
    f.eq.run();
    EXPECT_EQ(f.dev.prefetchesIssued(), 0u);

    // Streaming the payload (sequential lines) arms the prefetcher.
    f.blockingRead(f.base + buf + 64);
    f.eq.run();
    EXPECT_GT(f.dev.prefetchesIssued(), 0u);
    // The next lines are now (or will be) in nCache.
    std::uint64_t issued = f.dev.prefetchesIssued();
    EXPECT_LE(issued, f.cfg.netdimm.prefetchDepth * 2);
}

TEST(NetDimmDevice, PrefetchedLinesHitOnNextRead)
{
    Fixture f;
    Addr buf = 2 << 20;
    // Stream two sequential lines to trigger prefetching of the rest.
    f.blockingRead(f.base + buf);
    f.blockingRead(f.base + buf + 64);
    f.eq.run();
    // Prefetcher should have covered the following lines.
    EXPECT_TRUE(f.dev.ncache().probe(buf + 128));
}

TEST(NetDimmDevice, IsolatedReadsDoNotPrefetch)
{
    Fixture f;
    f.blockingRead(f.base + (3 << 20));
    f.blockingRead(f.base + (5 << 20));
    f.eq.run();
    EXPECT_EQ(f.dev.prefetchesIssued(), 0u);
}

TEST(NetDimmDevice, RxPathLandsPacketAndCachesHeader)
{
    Fixture f;
    f.dev.rxRing().init(f.base, 64);
    Addr buf = f.base + (1 << 20);
    f.dev.postRxBuffer(buf);

    PacketPtr got;
    Tick visible = 0;
    f.dev.setRxNotify([&](const PacketPtr &p, Tick t) {
        got = p;
        visible = t;
    });

    PacketPtr pkt = makePacket(1460, 1, 0);
    f.dev.deliver(pkt);
    f.eq.run();

    ASSERT_TRUE(got);
    EXPECT_EQ(got->rxBufAddr, buf);
    EXPECT_GT(visible, 0u);
    EXPECT_EQ(f.dev.rxFrames(), 1u);
    // The header line is parked in nCache with the flag set.
    auto r = f.dev.ncache().consume(1 << 20);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.wasHeader);
    EXPECT_GT(got->lat.get(LatComp::RxDma), 0u);
}

TEST(NetDimmDevice, RxWithoutBuffersDrops)
{
    Fixture f;
    f.dev.rxRing().init(f.base, 64);
    PacketPtr pkt = makePacket(64, 1, 0);
    f.dev.deliver(pkt);
    f.eq.run();
    EXPECT_EQ(f.dev.rxDrops(), 1u);
    EXPECT_EQ(f.dev.rxFrames(), 0u);
}

TEST(NetDimmDevice, TxPathEmitsFrameOnWire)
{
    Fixture f;
    f.dev.txRing().init(f.base + 4096, 64);

    PacketPtr sent;
    f.dev.setWire([&](const PacketPtr &p) { sent = p; });

    PacketPtr pkt = makePacket(512, 0, 1);
    pkt->txBufAddr = f.base + (1 << 20);
    f.dev.txRing().push(pkt->txBufAddr);
    f.dev.transmit(pkt);
    f.eq.run();

    ASSERT_TRUE(sent);
    EXPECT_EQ(sent.get(), pkt.get());
    EXPECT_EQ(f.dev.txFrames(), 1u);
    EXPECT_GT(pkt->lat.get(LatComp::TxDma), 0u);
}

TEST(NetDimmDevice, CloneBufferUsesFpmForHintedPair)
{
    Fixture f;
    const DimmDecoder &dec = f.dev.localMc().decoder();
    Addr src = f.base + dec.pageAddress(0, 2, 5, 0);
    Addr dst = f.base + dec.pageAddress(0, 2, 5, 1);

    Tick done = 0;
    CloneMode mode{};
    f.dev.cloneBuffer(dst, src, 1460, [&](Tick t, CloneMode m) {
        done = t;
        mode = m;
    });
    f.eq.run();
    EXPECT_EQ(mode, CloneMode::FPM);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(f.dev.rowCloneEngine().fpmClones(), 1u);
}

TEST(NetDimmDevice, CloneInvalidatesDestinationInNCache)
{
    Fixture f;
    const DimmDecoder &dec = f.dev.localMc().decoder();
    Addr src = f.base + dec.pageAddress(0, 2, 5, 0);
    Addr dst = f.base + dec.pageAddress(0, 2, 5, 1);
    f.dev.ncache().insert(dst - f.base, false);
    f.dev.cloneBuffer(dst, src, 4096, nullptr);
    f.eq.run();
    EXPECT_FALSE(f.dev.ncache().probe(dst - f.base));
}
