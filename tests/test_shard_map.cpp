/**
 * @file
 * ShardMap unit tests: deterministic placement, distinct replica
 * sets, bounded remap on membership change, exact restore on rejoin.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "workload/ShardMap.hh"

using namespace netdimm;

namespace
{

std::vector<std::uint32_t>
ids(std::uint32_t n)
{
    std::vector<std::uint32_t> v;
    for (std::uint32_t i = 1; i <= n; ++i)
        v.push_back(i);
    return v;
}

} // namespace

TEST(ShardMap, DeterministicPlacement)
{
    ShardMap a(ids(5), 64);
    ShardMap b(ids(5), 64);
    for (std::uint64_t k = 1; k <= 4096; ++k) {
        EXPECT_EQ(a.primary(k), b.primary(k));
        EXPECT_EQ(a.replicas(k, 3), b.replicas(k, 3));
    }
}

TEST(ShardMap, ReplicaSetsAreDistinctAndLedByPrimary)
{
    ShardMap m(ids(5), 64);
    for (std::uint64_t k = 1; k <= 4096; ++k) {
        auto rs = m.replicas(k, 3);
        ASSERT_EQ(rs.size(), 3u);
        EXPECT_EQ(rs[0], m.primary(k));
        std::set<std::uint32_t> uniq(rs.begin(), rs.end());
        EXPECT_EQ(uniq.size(), rs.size()) << "dup replica, key " << k;
        for (std::uint32_t id : uniq) {
            EXPECT_GE(id, 1u);
            EXPECT_LE(id, 5u);
        }
    }
}

TEST(ShardMap, ReplicationClampsToMembership)
{
    ShardMap m(ids(2), 32);
    auto rs = m.replicas(7, 5);
    EXPECT_EQ(rs.size(), 2u);
    EXPECT_NE(rs[0], rs[1]);
}

TEST(ShardMap, AllNodesOwnSomeKeys)
{
    ShardMap m(ids(6), 64);
    std::map<std::uint32_t, std::uint64_t> owned;
    const std::uint64_t keys = 12000;
    for (std::uint64_t k = 1; k <= keys; ++k)
        ++owned[m.primary(k)];
    ASSERT_EQ(owned.size(), 6u) << "some node owns nothing";
    // Consistent hashing with enough vnodes keeps the split within a
    // loose factor of fair share: no node should be nearly empty or
    // hold most of the ring.
    for (const auto &[id, n] : owned) {
        EXPECT_GT(n, keys / 6 / 4) << "node " << id << " starved";
        EXPECT_LT(n, keys / 2) << "node " << id << " dominates";
    }
}

// The consistent-hashing point: removing one of N nodes remaps only
// the keys that node owned (~K/N), not the whole space.
TEST(ShardMap, LeaveRemapsOnlyTheLeaversShare)
{
    const std::uint32_t n = 8;
    const std::uint64_t keys = 16000;
    ShardMap full(ids(n), 64);
    ShardMap less(ids(n), 64);
    less.remove(3);

    std::uint64_t moved = 0;
    for (std::uint64_t k = 1; k <= keys; ++k) {
        std::uint32_t before = full.primary(k);
        std::uint32_t after = less.primary(k);
        EXPECT_NE(after, 3u);
        if (before != after) {
            // Only keys the leaver owned may move.
            EXPECT_EQ(before, 3u) << "key " << k << " moved away from"
                                  << " a surviving node";
            ++moved;
        }
    }
    // ~K/N expected; allow 2x for hash-split unevenness.
    EXPECT_LE(moved, 2 * keys / n);
    EXPECT_GT(moved, 0u);
}

TEST(ShardMap, RejoinRestoresPlacementExactly)
{
    ShardMap a(ids(5), 64);
    ShardMap b(ids(5), 64);
    b.remove(2);
    b.add(2);
    for (std::uint64_t k = 1; k <= 4096; ++k)
        EXPECT_EQ(a.replicas(k, 2), b.replicas(k, 2));
}

TEST(ShardMap, AllocFreeReplicasMatchesAllocating)
{
    ShardMap m(ids(5), 48);
    std::vector<std::uint32_t> out;
    for (std::uint64_t k = 1; k <= 2048; ++k) {
        m.replicas(k, 3, out);
        EXPECT_EQ(out, m.replicas(k, 3));
    }
}
