/**
 * @file
 * Unit tests for the free-list object pools behind makePacket() /
 * makeMemRequest(): steady-state churn must recycle blocks instead of
 * touching the heap, stale counters must balance, and draining must
 * hand every cached block back.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/Packet.hh"

using namespace netdimm;

TEST(ObjectPool, SteadyStateChurnDoesNotGrowPools)
{
    // Warm both pools so the measured region starts at high water.
    for (int i = 0; i < 32; ++i) {
        auto p = makePacket(64, 0, 1);
        auto r = makeMemRequest(Addr(i) * 64, 64, false,
                                MemSource::HostCpu, nullptr);
    }
    PoolStats warm = objectPoolTotals();

    constexpr std::uint64_t rounds = 10000;
    for (std::uint64_t i = 0; i < rounds; ++i) {
        auto p = makePacket(1460, 0, 1);
        auto r = makeMemRequest(Addr(i) * 64, 64, true,
                                MemSource::HostDma, nullptr);
    }
    PoolStats after = objectPoolTotals();

    // No new heap blocks: every make_* was served off a free list.
    EXPECT_EQ(after.heapAllocs, warm.heapAllocs);
    EXPECT_EQ(after.reuses, warm.reuses + 2 * rounds);
    EXPECT_EQ(after.outstanding, warm.outstanding);
}

TEST(ObjectPool, FreedBlockIsRecycledLifo)
{
    auto p1 = makePacket(64, 0, 1);
    const void *block = p1.get();
    p1.reset();
    // The LIFO free list hands the just-freed block straight back.
    auto p2 = makePacket(64, 0, 1);
    EXPECT_EQ(static_cast<const void *>(p2.get()), block);
}

TEST(ObjectPool, DrainReturnsCachedBlocksToHeap)
{
    {
        auto p = makePacket(64, 0, 1);
        auto r = makeMemRequest(0, 64, false, MemSource::HostCpu,
                                nullptr);
    }
    PoolStats before = objectPoolTotals();
    EXPECT_GT(before.cached, 0u);
    drainObjectPools();
    PoolStats after = objectPoolTotals();
    EXPECT_EQ(after.cached, 0u);
    EXPECT_EQ(after.outstanding, before.outstanding);
    // The pools keep working after a drain (they just regrow).
    auto p = makePacket(64, 0, 1);
    EXPECT_EQ(p->bytes, 64u);
}

TEST(ObjectPool, ThreadLocalPoolsRegisterAndDrainConcurrently)
{
    // Pools are thread-local: each spawned thread allocates from its
    // own free lists (registering them under the registry mutex),
    // churns, drains, and exits (unregistering). Meanwhile this
    // thread aggregates totals across all live pools. The test is a
    // TSan canary for the register/aggregate paths; the per-thread
    // invariants are asserted inside each worker.
    constexpr int kThreads = 8;
    constexpr std::uint64_t kRounds = 2000;

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&failures] {
            for (std::uint64_t i = 0; i < kRounds; ++i) {
                auto p = makePacket(1460, 0, 1);
                if (p->bytes != 1460u)
                    ++failures;
            }
            // This thread's pools recycled after warmup and nothing
            // escaped the loop.
            PoolStats mine = threadObjectPoolTotals();
            if (mine.outstanding != 0 || mine.cached == 0)
                ++failures;
            PoolStats drained = drainObjectPools();
            if (drained.cached == 0)
                ++failures;
            if (threadObjectPoolTotals().cached != 0)
                ++failures;
        });
    }
    // Concurrent cross-thread aggregation must be safe (and exact,
    // thanks to the single-writer relaxed counters).
    for (int i = 0; i < 1000; ++i)
        (void)objectPoolTotals();
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
}
