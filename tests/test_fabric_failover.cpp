/**
 * @file
 * Tests for fabric failover: link up/down state with in-flight frame
 * drops, live-set ECMP rerouting (member exclusion at the link-down
 * notification), whole-spine failure and recovery, fabric health
 * reporting, fault-ledger booking of flap schedules, and an
 * end-to-end reliable flow that survives a spine dying mid-transfer
 * without waiting for a retransmission timeout.
 */

#include <gtest/gtest.h>

#include "net/Routing.hh"
#include "net/Topology.hh"
#include "workload/IperfFlow.hh"

using namespace netdimm;

namespace
{

struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

struct SinkEndpoint : NetEndpoint
{
    EventQueue &eq;
    std::vector<std::pair<PacketPtr, Tick>> got;

    explicit SinkEndpoint(EventQueue &e) : eq(e) {}

    void
    deliver(const PacketPtr &pkt) override
    {
        got.emplace_back(pkt, eq.curTick());
    }
};

} // namespace

// ---------------------------------------------------------------------
// Link up/down state
// ---------------------------------------------------------------------

TEST(LinkState, SendWhileDownIsDroppedAndCounted)
{
    EventQueue eq;
    EthConfig cfg;
    EthLink link(eq, "wire", cfg);
    SinkEndpoint a(eq), b(eq);
    link.connect(&a, &b);

    link.setLinkState(false);
    EXPECT_FALSE(link.up());
    link.send(&a, makePacket(200, 0, 1));
    eq.run();
    EXPECT_TRUE(b.got.empty());
    EXPECT_EQ(link.framesDroppedLinkDown(), 1u);
    EXPECT_EQ(link.downEvents(), 1u);

    link.setLinkState(true);
    link.send(&a, makePacket(200, 0, 1));
    eq.run();
    EXPECT_EQ(b.got.size(), 1u);
    EXPECT_EQ(link.framesCarried(), 1u);
}

TEST(LinkState, InFlightFramesDieWithTheLink)
{
    EventQueue eq;
    EthConfig cfg;
    EthLink link(eq, "wire", cfg);
    SinkEndpoint a(eq), b(eq);
    link.connect(&a, &b);

    // The frame needs serialization + propagation + MAC time; kill
    // the link one tick after the send, long before arrival.
    link.send(&a, makePacket(1460, 0, 1));
    eq.schedule(1, [&] { link.setLinkState(false); });
    eq.run();
    EXPECT_TRUE(b.got.empty());
    EXPECT_EQ(link.framesDroppedLinkDown(), 1u);

    // Frames sent after recovery belong to the new epoch and deliver.
    link.setLinkState(true);
    link.send(&a, makePacket(1460, 0, 1));
    eq.run();
    EXPECT_EQ(b.got.size(), 1u);
}

TEST(LinkState, ListenersSeeOnlyActualTransitions)
{
    EventQueue eq;
    EthConfig cfg;
    EthLink link(eq, "wire", cfg);
    std::vector<bool> edges;
    link.addStateListener(
        [&](EthLink &, bool up) { edges.push_back(up); });

    link.setLinkState(false);
    link.setLinkState(false); // idempotent: no second callback
    link.setLinkState(true);
    link.setLinkState(true);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_FALSE(edges[0]);
    EXPECT_TRUE(edges[1]);
    EXPECT_EQ(link.downEvents(), 1u);
}

TEST(LinkState, ScheduledFlapTakesTheLinkDownAndBack)
{
    EventQueue eq;
    EthConfig cfg;
    EthLink link(eq, "wire", cfg);
    link.scheduleFlap(1000, 500);

    bool down_seen = false, up_seen = false;
    // Flap edges run at Maintenance priority, so Default-priority
    // probes at the same tick observe the new state.
    eq.schedule(1000, [&] { down_seen = !link.up(); });
    eq.schedule(1500, [&] { up_seen = link.up(); });
    eq.run();
    EXPECT_TRUE(down_seen);
    EXPECT_TRUE(up_seen);
    EXPECT_TRUE(link.up());
    EXPECT_EQ(link.downEvents(), 1u);
}

// ---------------------------------------------------------------------
// ECMP live-set rerouting
// ---------------------------------------------------------------------

TEST(FabricFailover, DeadMemberIsExcludedAtNotificationTime)
{
    EventQueue eq;
    EthConfig cfg;
    LeafSpineTopology topo(eq, "fab", 2, 2, cfg);
    SinkEndpoint a(eq), b(eq);
    EthLink &la = topo.attach(0, 0, &a);
    topo.attach(1, 1, &b);

    // Baseline: 32 flows spread over both spines.
    for (int f = 0; f < 32; ++f) {
        PacketPtr pkt = makePacket(200, 0, 1);
        pkt->flowId = std::uint64_t(f);
        la.send(&a, pkt);
    }
    eq.run();
    ASSERT_EQ(b.got.size(), 32u);
    ASSERT_GT(topo.spine(0).framesForwarded(), 0u);
    std::uint64_t spine0_before = topo.spine(0).framesForwarded();

    // Kill leaf 0's uplink to spine 0: the leaf's ECMP group loses
    // the member immediately, so every subsequent flow -- including
    // the ones that used to hash onto spine 0 -- rides spine 1.
    topo.failLink(0, 0);
    EXPECT_EQ(topo.leaf(0).liveMembers(1), 1u);
    for (int f = 0; f < 32; ++f) {
        PacketPtr pkt = makePacket(200, 0, 1);
        pkt->flowId = std::uint64_t(f);
        la.send(&a, pkt);
    }
    eq.run();
    EXPECT_EQ(b.got.size(), 64u);
    EXPECT_EQ(topo.spine(0).framesForwarded(), spine0_before);
    EXPECT_EQ(topo.dropsNoPath(), 0u);
    EXPECT_FALSE(topo.degraded());

    // Recovery restores the member; the original split returns.
    topo.recoverLink(0, 0);
    EXPECT_EQ(topo.leaf(0).liveMembers(1), 2u);
    for (int f = 0; f < 32; ++f) {
        PacketPtr pkt = makePacket(200, 0, 1);
        pkt->flowId = std::uint64_t(f);
        la.send(&a, pkt);
    }
    eq.run();
    EXPECT_EQ(b.got.size(), 96u);
    EXPECT_EQ(topo.spine(0).framesForwarded(), 2 * spine0_before);
}

TEST(FabricFailover, AllMembersDownCountsNoPathAndDegrades)
{
    QuietScope q;
    EventQueue eq;
    EthConfig cfg;
    LeafSpineTopology topo(eq, "fab", 2, 2, cfg);
    SinkEndpoint a(eq), b(eq);
    EthLink &la = topo.attach(0, 0, &a);
    topo.attach(1, 1, &b);

    topo.failLink(0, 0);
    topo.failLink(0, 1);
    EXPECT_TRUE(topo.degraded());
    EXPECT_EQ(topo.leaf(0).liveMembers(1), 0u);

    la.send(&a, makePacket(200, 0, 1));
    eq.run();
    EXPECT_TRUE(b.got.empty());
    EXPECT_EQ(topo.leaf(0).dropsNoPath(), 1u);
    EXPECT_EQ(topo.dropsNoPath(), 1u);

    topo.recoverLink(0, 1);
    EXPECT_FALSE(topo.degraded());
    la.send(&a, makePacket(200, 0, 1));
    eq.run();
    EXPECT_EQ(b.got.size(), 1u);
}

TEST(FabricFailover, SelectionAgreesWithTheExportedFlowHash)
{
    EventQueue eq;
    EthConfig cfg;
    LeafSpineTopology topo(eq, "fab", 2, 2, cfg);
    SinkEndpoint a(eq), b(eq);
    EthLink &la = topo.attach(0, 0, &a);
    topo.attach(1, 1, &b);

    // With both members live, packet (src 0, dst 1, flow f) must use
    // the spine the exported hash names -- the invariant that keeps
    // selection a pure function of packet fields.
    for (std::uint64_t f = 0; f < 16; ++f) {
        std::uint64_t before[2] = {topo.spine(0).framesForwarded(),
                                   topo.spine(1).framesForwarded()};
        PacketPtr pkt = makePacket(200, 0, 1);
        pkt->flowId = f;
        la.send(&a, pkt);
        eq.run();
        std::size_t want = std::size_t(ecmpFlowHash(0, 1, f) % 2);
        EXPECT_EQ(topo.spine(want).framesForwarded(), before[want] + 1)
            << "flow " << f;
    }
}

TEST(FabricFailover, QueuedFramesFlushWhenTheirLinkDies)
{
    QuietScope q;
    EventQueue eq;
    EthConfig cfg;
    cfg.gbps = 1.0; // slow wire so a burst queues at the uplink port
    LeafSpineTopology topo(eq, "fab", 2, 2, cfg);
    SinkEndpoint a(eq), b(eq);
    EthLink &la = topo.attach(0, 0, &a);
    topo.attach(1, 1, &b);

    // One flow pins the whole burst to one spine; compute which from
    // the exported hash, then kill that uplink mid-burst.
    const std::uint64_t flow = 5;
    std::uint32_t s = std::uint32_t(ecmpFlowHash(0, 1, flow) % 2);
    for (int i = 0; i < 16; ++i) {
        PacketPtr pkt = makePacket(1460, 0, 1);
        pkt->flowId = flow;
        la.send(&a, pkt);
    }
    eq.schedule(usToTicks(30), [&] { topo.failLink(0, s); });
    eq.run();
    EXPECT_LT(b.got.size(), 16u);
    // Losses are booked against link-down (flushed egress queue, dead
    // in flight, or sent into the dead link) -- not silent.
    EXPECT_GT(topo.dropsLinkDown(), 0u);
    EXPECT_EQ(b.got.size() + topo.dropsLinkDown() + topo.dropsNoPath(),
              16u);
}

// ---------------------------------------------------------------------
// Fabric health and whole-spine failure
// ---------------------------------------------------------------------

TEST(FabricHealthReport, TracksLiveLinksBisectionAndDegradation)
{
    EventQueue eq;
    EthConfig cfg;
    LeafSpineTopology topo(eq, "fab", 2, 2, cfg);
    SinkEndpoint a(eq), b(eq);
    topo.attach(0, 0, &a);
    topo.attach(1, 1, &b);

    FabricHealth h = topo.health();
    EXPECT_EQ(h.totalUplinks, 4u);
    EXPECT_EQ(h.liveUplinks, 4u);
    EXPECT_DOUBLE_EQ(h.bisectionGbps, 4.0 * cfg.gbps);
    EXPECT_EQ(h.degradedGroups, 0u);
    EXPECT_TRUE(h.fullyConnected());

    topo.failLink(0, 1);
    h = topo.health();
    EXPECT_EQ(h.liveUplinks, 3u);
    EXPECT_DOUBLE_EQ(h.bisectionGbps, 3.0 * cfg.gbps);
    EXPECT_TRUE(h.fullyConnected()); // spine 0 still reaches leaf 1

    // Spine 0 dying too leaves leaf 0 with no live uplink at all.
    topo.failSpine(0);
    h = topo.health();
    EXPECT_EQ(h.liveUplinks, 1u);
    EXPECT_DOUBLE_EQ(h.bisectionGbps, 1.0 * cfg.gbps);
    EXPECT_FALSE(h.fullyConnected());
    EXPECT_TRUE(topo.degraded());

    topo.recoverSpine(0);
    topo.recoverLink(0, 1);
    h = topo.health();
    EXPECT_EQ(h.liveUplinks, 4u);
    EXPECT_TRUE(h.fullyConnected());
    EXPECT_FALSE(topo.degraded());
}

TEST(FabricFaults, FlapSchedulesCloseTheRegistryLedger)
{
    EventQueue eq;
    EthConfig cfg;
    LeafSpineTopology topo(eq, "fab", 2, 2, cfg);
    SinkEndpoint a(eq), b(eq);
    topo.attach(0, 0, &a);
    topo.attach(1, 1, &b);

    FaultRegistry reg(42);
    topo.attachFaultDomains(reg);
    topo.scheduleLinkFlap(0, 0, usToTicks(10), usToTicks(5));
    topo.scheduleLinkFlap(1, 1, usToTicks(20), usToTicks(5));
    topo.scheduleLinkFlap(0, 0, usToTicks(40), usToTicks(2));
    eq.run();

    EXPECT_EQ(reg.injected(), 3u);
    EXPECT_EQ(reg.recovered(), 3u);
    EXPECT_TRUE(reg.ledgerClosed());
    const FaultDomain *d = reg.find(topo.uplink(0, 0).name());
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->injected(), 2u);
    EXPECT_TRUE(topo.health().fullyConnected());
}

// ---------------------------------------------------------------------
// End to end: a spine dies under a reliable flow
// ---------------------------------------------------------------------

namespace
{

struct SpineDeathStats
{
    std::uint64_t delivered = 0;
    std::uint64_t enqueued = 0;
    std::uint64_t retx = 0;
    std::uint64_t timeouts = 0;
    std::uint32_t aborted = 0;
    std::uint64_t dropsLinkDown = 0;
    std::uint64_t downEvents = 0;
    Tick endTick = 0;

    bool
    operator==(const SpineDeathStats &o) const
    {
        return delivered == o.delivered && enqueued == o.enqueued &&
               retx == o.retx && timeouts == o.timeouts &&
               aborted == o.aborted &&
               dropsLinkDown == o.dropsLinkDown &&
               downEvents == o.downEvents && endTick == o.endTick;
    }
};

SpineDeathStats
runSpineDeath(std::uint64_t seed)
{
    SystemConfig sys;
    sys.nic = NicKind::NetDimm;
    sys.seed = seed;
    EventQueue eq;
    Node a(eq, "a", sys, 0);
    Node b(eq, "b", sys, 1);
    LeafSpineTopology topo(eq, "fab", 2, 2, sys.eth);
    a.connectTo(topo.attach(0, 0, a.endpoint()));
    b.connectTo(topo.attach(1, 1, b.endpoint()));

    IperfFlow flow(eq, "iperf", a, b, 1460, 16, 4);
    flow.enableReliable(sys.transport);
    flow.start();

    // Spine 0 dies mid-transfer and stays dead: segments and ACKs in
    // flight on its uplinks are lost, and every stream that hashed to
    // it must re-route through spine 1.
    eq.schedule(usToTicks(200), [&] { topo.failSpine(0); });
    eq.run(usToTicks(1200));
    flow.stop();
    eq.run();

    SpineDeathStats r;
    r.delivered = flow.deliveredBytes();
    r.enqueued = flow.enqueuedBytes();
    r.retx = flow.retransmissions();
    r.timeouts = flow.timeouts();
    r.aborted = flow.abortedFlows();
    r.dropsLinkDown = topo.dropsLinkDown();
    for (std::uint32_t l = 0; l < topo.numLeaves(); ++l)
        r.downEvents += topo.uplink(l, 0).downEvents();
    r.endTick = eq.curTick();
    return r;
}

} // namespace

TEST(FabricEndToEnd, ReliableFlowSurvivesSpineDeathWithoutRto)
{
    QuietScope q;
    SpineDeathStats r = runSpineDeath(7);

    // The failure was real: both of spine 0's uplinks went down and
    // frames died with them.
    EXPECT_EQ(r.downEvents, 2u);
    EXPECT_GT(r.dropsLinkDown, 0u);
    EXPECT_GT(r.retx, 0u);

    // ...and yet the flow delivered every byte it enqueued, with no
    // stream aborting. Zero RTO firings proves failover engaged
    // through the link-down exclusion (dup-ACK fast retransmit on the
    // surviving path), not through timeout expiry.
    EXPECT_GT(r.enqueued, 0u);
    EXPECT_EQ(r.delivered, r.enqueued);
    EXPECT_EQ(r.aborted, 0u);
    EXPECT_EQ(r.timeouts, 0u);
}

TEST(FabricEndToEnd, SpineDeathReplayIsExactlyEqual)
{
    QuietScope q;
    SpineDeathStats x = runSpineDeath(11);
    SpineDeathStats y = runSpineDeath(11);
    EXPECT_TRUE(x == y);
    EXPECT_EQ(x.delivered, x.enqueued);
}
