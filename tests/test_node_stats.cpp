/**
 * @file
 * Tests for the Node statistics dump and the Packet / breakdown
 * helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "net/Link.hh"
#include "kernel/Node.hh"

using namespace netdimm;

TEST(LatencyBreakdown, AddGetTotal)
{
    LatencyBreakdown b;
    EXPECT_EQ(b.total(), 0u);
    b.add(LatComp::TxCopy, 100);
    b.add(LatComp::Wire, 50);
    b.add(LatComp::TxCopy, 25);
    EXPECT_EQ(b.get(LatComp::TxCopy), 125u);
    EXPECT_EQ(b.get(LatComp::Wire), 50u);
    EXPECT_EQ(b.get(LatComp::RxDma), 0u);
    EXPECT_EQ(b.total(), 175u);
}

TEST(LatencyBreakdown, AccumulateOperator)
{
    LatencyBreakdown a, b;
    a.add(LatComp::IoReg, 10);
    b.add(LatComp::IoReg, 5);
    b.add(LatComp::RxCopy, 7);
    a += b;
    EXPECT_EQ(a.get(LatComp::IoReg), 15u);
    EXPECT_EQ(a.get(LatComp::RxCopy), 7u);
}

TEST(LatencyBreakdown, ComponentNamesMatchPaperLegend)
{
    EXPECT_STREQ(latCompName(LatComp::TxCopy), "txCopy");
    EXPECT_STREQ(latCompName(LatComp::TxFlush), "txFlush");
    EXPECT_STREQ(latCompName(LatComp::IoReg), "I/O reg acc");
    EXPECT_STREQ(latCompName(LatComp::Wire), "wire");
    EXPECT_STREQ(latCompName(LatComp::RxInvalidate), "rxInvalidate");
}

TEST(Packet, LinesRoundsUp)
{
    EXPECT_EQ(makePacket(1)->lines(), 1u);
    EXPECT_EQ(makePacket(64)->lines(), 1u);
    EXPECT_EQ(makePacket(65)->lines(), 2u);
    EXPECT_EQ(makePacket(1514)->lines(), 24u); // the paper's 24
    EXPECT_EQ(makePacket(1536)->lines(), 24u);
}

TEST(Packet, IdsAreUnique)
{
    PacketPtr a = makePacket(64), b = makePacket(64);
    EXPECT_NE(a->id, b->id);
}

TEST(NicKindNames, MatchFigureLabels)
{
    EXPECT_STREQ(nicKindName(NicKind::Discrete), "dNIC");
    EXPECT_STREQ(nicKindName(NicKind::DiscreteZeroCopy), "dNIC.zcpy");
    EXPECT_STREQ(nicKindName(NicKind::Integrated), "iNIC");
    EXPECT_STREQ(nicKindName(NicKind::IntegratedZeroCopy),
                 "iNIC.zcpy");
    EXPECT_STREQ(nicKindName(NicKind::NetDimm), "NetDIMM");
}

namespace
{
std::string
statsAfterTraffic(NicKind kind)
{
    setQuiet(true);
    SystemConfig cfg;
    cfg.nic = kind;
    EventQueue eq;
    Node a(eq, "a", cfg, 0), b(eq, "b", cfg, 1);
    EthLink link(eq, "link", cfg.eth);
    link.connect(a.endpoint(), b.endpoint());
    a.connectTo(link);
    b.connectTo(link);
    b.setReceiveHandler([](const PacketPtr &, Tick) {});
    for (int i = 0; i < 3; ++i) {
        eq.schedule(usToTicks(4) * Tick(i + 1), [&a, &b] {
            a.sendPacket(a.makeTxPacket(512, b.id(), 3));
        });
    }
    eq.run();
    std::ostringstream os;
    b.printStats(os);
    return os.str();
}
} // namespace

TEST(NodeStats, NetDimmDumpContainsEveryComponent)
{
    std::string s = statsAfterTraffic(NicKind::NetDimm);
    for (const char *key :
         {"b.driver", "b.llc", "b.mc0", "b.mc1", "b.netdimm",
          "b.netdimm.ncache", "b.netdimm.rowclone", "b.alloccache",
          "rxPackets", "fpmClones", "fastHits", "busUtilization"}) {
        EXPECT_NE(s.find(key), std::string::npos) << key;
    }
    // Values reflect the traffic.
    EXPECT_NE(s.find("rxFrames"), std::string::npos);
}

TEST(NodeStats, DiscreteDumpContainsPcieNotNetdimm)
{
    std::string s = statsAfterTraffic(NicKind::Discrete);
    EXPECT_NE(s.find("b.pcie"), std::string::npos);
    EXPECT_NE(s.find("tlpsSent"), std::string::npos);
    EXPECT_NE(s.find("b.nic"), std::string::npos);
    EXPECT_EQ(s.find("netdimm"), std::string::npos);
}

TEST(NodeStats, IntegratedDumpHasNicNoPcie)
{
    std::string s = statsAfterTraffic(NicKind::Integrated);
    EXPECT_NE(s.find("b.nic"), std::string::npos);
    EXPECT_EQ(s.find("b.pcie"), std::string::npos);
}
