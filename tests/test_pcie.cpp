/**
 * @file
 * Unit tests for the analytical PCIe model: serialization math,
 * posted vs non-posted semantics, TLP splitting, bandwidth ceiling.
 */

#include <gtest/gtest.h>

#include "pcie/PcieLink.hh"

using namespace netdimm;

namespace
{

struct Fixture
{
    EventQueue eq;
    SystemConfig cfg;
    PcieLink link;

    Fixture() : link(eq, "pcie", cfg.pcie) {}

    Tick
    blockingRead(std::uint32_t bytes,
                 PcieDir dir = PcieDir::Downstream)
    {
        Tick done = 0;
        link.read(bytes, dir, [&](Tick t) { done = t; });
        eq.run();
        return done;
    }

    Tick
    blockingWrite(std::uint32_t bytes,
                  PcieDir dir = PcieDir::Downstream)
    {
        Tick done = 0;
        link.postedWrite(bytes, dir, [&](Tick t) { done = t; });
        eq.run();
        return done;
    }
};

} // namespace

TEST(Pcie, EffectiveBandwidthReflectsEncoding)
{
    PcieConfig p; // Gen4 x8
    // 16 GT/s * 8 lanes * 128/130 / 8 = ~15.75 GB/s = 15.75 B/ns.
    EXPECT_NEAR(p.bytesPerTick() * 1000.0, 15.75, 0.1);
}

TEST(Pcie, PostedWriteMatchesIdeal)
{
    Fixture f;
    Tick done = f.blockingWrite(64);
    EXPECT_EQ(done, f.link.idealPostedLatency(64));
    // Dominated by propagation (~150ns) plus ~6ns serialization.
    EXPECT_NEAR(ticksToNs(done), 155.0, 10.0);
}

TEST(Pcie, ReadIsFullRoundTrip)
{
    Fixture f;
    Tick rd = f.blockingRead(64);
    EXPECT_EQ(rd, f.link.idealReadLatency(64));
    // At least two propagations.
    EXPECT_GE(rd, 2 * f.cfg.pcie.propagation);
}

TEST(Pcie, MmioReadCostsRoundTripMmioWriteIsPosted)
{
    Fixture f;
    Tick rd = 0, wr = 0;
    f.link.mmioRead([&](Tick t) { rd = t; });
    f.eq.run();
    Tick t0 = f.eq.curTick();
    f.link.mmioWrite([&](Tick t) { wr = t - t0; });
    f.eq.run();
    EXPECT_GT(rd, wr);
    EXPECT_NEAR(double(rd), 2.0 * double(wr), 0.2 * double(rd));
}

TEST(Pcie, LargePayloadSplitsIntoMaxPayloadTlps)
{
    Fixture f;
    f.blockingWrite(1024); // 4 x 256B TLPs
    EXPECT_EQ(f.link.tlpsSent(), 4u);
    EXPECT_EQ(f.link.payloadBytes(), 1024u);
}

TEST(Pcie, SerializationGrowsWithPayload)
{
    Fixture f;
    Tick small = f.blockingWrite(64);
    Tick t0 = f.eq.curTick();
    Tick large = f.blockingWrite(8192) - t0;
    // 8KB at ~15.75 GB/s is ~520ns of extra serialization.
    EXPECT_GT(large, small + nsToTicks(400));
}

TEST(Pcie, DirectionsAreIndependent)
{
    Fixture f;
    // Saturate downstream; an upstream write is unaffected.
    for (int i = 0; i < 32; ++i)
        f.link.postedWrite(4096, PcieDir::Downstream, nullptr);
    Tick t0 = f.eq.curTick();
    Tick up = 0;
    f.link.postedWrite(64, PcieDir::Upstream,
                       [&](Tick t) { up = t - t0; });
    f.eq.run();
    EXPECT_EQ(up, f.link.idealPostedLatency(64));
}

TEST(Pcie, BackToBackWritesQueueOnSerialization)
{
    Fixture f;
    Tick first = 0, second = 0;
    f.link.postedWrite(4096, PcieDir::Downstream,
                       [&](Tick t) { first = t; });
    f.link.postedWrite(4096, PcieDir::Downstream,
                       [&](Tick t) { second = t; });
    f.eq.run();
    // The second write's TLPs serialize behind the first's.
    EXPECT_GE(second, first + nsToTicks(200));
}

TEST(Pcie, SendHeaderIsOneWay)
{
    Fixture f;
    Tick done = 0;
    f.link.sendHeader(PcieDir::Upstream, [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_LT(done, f.link.idealReadLatency(4));
    EXPECT_GE(done, f.cfg.pcie.propagation);
}

TEST(Pcie, ThroughputBoundedByLinkRate)
{
    Fixture f;
    const int n = 256;
    Tick last = 0;
    int done = 0;
    for (int i = 0; i < n; ++i) {
        f.link.postedWrite(4096, PcieDir::Downstream, [&](Tick t) {
            last = std::max(last, t);
            ++done;
        });
    }
    f.eq.run();
    EXPECT_EQ(done, n);
    double gbytes_per_s =
        double(n) * 4096 / ticksToSec(last) / 1e9;
    EXPECT_LE(gbytes_per_s, 15.8);
    EXPECT_GT(gbytes_per_s, 10.0);
}
