/**
 * @file
 * Tests for the pod-sharded PDES driver (DESIGN.md §16): the SPSC
 * shard channel, the conservative quantum protocol, determinism of
 * the sharded decomposition against the monolithic golden, and pool
 * confinement across shard teardown.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "harness/LatencyHistogram.hh"
#include "net/Topology.hh"
#include "sim/Logging.hh"
#include "sim/ParallelSim.hh"
#include "sim/ShardChannel.hh"

using namespace netdimm;

// -- ShardChannel ----------------------------------------------------

TEST(ShardChannel, SingleThreadFifo)
{
    ShardChannel<int> ch;
    EXPECT_EQ(ch.front(), nullptr);

    for (int i = 0; i < 10; ++i)
        ch.push(i);
    for (int i = 0; i < 10; ++i) {
        const int *v = ch.front();
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, i);
        ch.pop();
    }
    EXPECT_EQ(ch.front(), nullptr);
    EXPECT_EQ(ch.pushes(), 10u);
    EXPECT_EQ(ch.pops(), 10u);
}

TEST(ShardChannel, CrossesChunkBoundaries)
{
    // Push through several chunks before draining: entries must
    // survive the chunk hand-off, in order.
    ShardChannel<std::uint64_t, 16> ch;
    const std::uint64_t n = 100; // > 6 chunks of 16
    for (std::uint64_t i = 0; i < n; ++i)
        ch.push(i);
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t *v = ch.front();
        ASSERT_NE(v, nullptr) << "entry " << i;
        EXPECT_EQ(*v, i);
        ch.pop();
    }
    EXPECT_EQ(ch.front(), nullptr);
}

TEST(ShardChannel, RecyclesChunksInSteadyState)
{
    // Interleaved push/pop traffic far exceeding one chunk must reuse
    // retired chunks instead of growing the heap.
    ShardChannel<std::uint64_t, 16> ch;
    for (std::uint64_t round = 0; round < 200; ++round) {
        for (std::uint64_t i = 0; i < 24; ++i)
            ch.push(round * 24 + i);
        while (ch.front() != nullptr)
            ch.pop();
    }
    EXPECT_EQ(ch.pushes(), 200u * 24);
    EXPECT_EQ(ch.pops(), ch.pushes());
    // 200 rounds x 24 entries through 16-slot chunks would be ~300
    // chunks without recycling; steady state needs only a handful.
    EXPECT_LE(ch.chunkAllocs(), 8u);
}

TEST(ShardChannel, DestructorReleasesUndrainedEntries)
{
    // Entries still in flight at teardown are destroyed, not leaked
    // (ASan/LSan would flag the leak; shared_ptr proves destructors
    // run).
    auto token = std::make_shared<int>(7);
    {
        ShardChannel<std::shared_ptr<int>, 4> ch;
        for (int i = 0; i < 10; ++i)
            ch.push(token);
        ch.pop(); // consume one, leave nine across chunks
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(ShardChannel, TwoThreadStress)
{
    // Producer floods sequenced values while the consumer drains
    // concurrently; FIFO order and completeness must survive chunk
    // hand-offs under real contention. (TSan-clean is part of the
    // contract; the tsan CI job runs this.)
    const std::uint64_t n = 200000;
    ShardChannel<std::uint64_t, 64> ch;
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < n; ++i)
            ch.push(i);
    });
    std::uint64_t expect = 0;
    while (expect < n) {
        const std::uint64_t *v = ch.front();
        if (v == nullptr)
            continue;
        ASSERT_EQ(*v, expect);
        ch.pop();
        ++expect;
    }
    producer.join();
    EXPECT_EQ(ch.front(), nullptr);
    EXPECT_EQ(ch.pushes(), n);
    EXPECT_EQ(ch.pops(), n);
}

// -- ParallelSim protocol --------------------------------------------

TEST(ParallelSim, NullRunAdvancesAllShardsToHorizon)
{
    // No traffic: every shard still steps ceil(horizon/quantum)
    // quanta (the implicit null-message exchange) and executes
    // nothing.
    for (auto mode : {ParallelSim::Mode::DeterministicMerge,
                      ParallelSim::Mode::FreeRun}) {
        ParallelSim sim(4, 1000, mode);
        sim.run(10500, [](ShardHost &) {});
        ASSERT_EQ(sim.shardStats().size(), 4u);
        for (const ShardRunStats &s : sim.shardStats()) {
            EXPECT_EQ(s.quanta, 11u); // ceil(10500 / 1000)
            EXPECT_EQ(s.executed, 0u);
            EXPECT_EQ(s.pumped, 0u);
        }
        EXPECT_EQ(sim.totalExecuted(), 0u);
    }
}

TEST(ParallelSim, LocalEventsRunOnOwningShard)
{
    // Each shard schedules its own events; counters come back per
    // shard and the build callback sees the right ids.
    ParallelSim sim(2, 100, ParallelSim::Mode::FreeRun);
    std::atomic<std::uint64_t> fired{0};
    sim.run(1000, [&fired](ShardHost &host) {
        unsigned id = host.shardId();
        EXPECT_LT(id, host.shards());
        for (Tick t = id; t < 900; t += 7)
            host.eventq().schedule(t, [&fired] {
                fired.fetch_add(1, std::memory_order_relaxed);
            });
    });
    EXPECT_EQ(sim.totalExecuted(),
              fired.load(std::memory_order_relaxed));
    EXPECT_GT(sim.totalExecuted(), 0u);
}

TEST(ParallelSimDeath, RejectsZeroShardsAndDoubleRun)
{
    EXPECT_DEATH(ParallelSim(0, 100,
                             ParallelSim::Mode::DeterministicMerge),
                 "shard");
    EXPECT_DEATH(ParallelSim(2, 0,
                             ParallelSim::Mode::DeterministicMerge),
                 "quantum");
    ParallelSim sim(1, 100, ParallelSim::Mode::DeterministicMerge);
    sim.run(100, [](ShardHost &) {});
    EXPECT_DEATH(sim.run(100, [](ShardHost &) {}), "one-shot");
}

// -- Sharded fabric determinism --------------------------------------

namespace
{

/** Per-run aggregate that must be shard-count- and mode-invariant. */
struct TrafficResult
{
    std::string digest;
    std::uint64_t sent = 0;
    std::uint64_t rcvd = 0;
    std::uint64_t fabric = 0;
    std::uint64_t executed = 0;
};

/**
 * Deterministic many-to-many workload on a PodFabricSpec-shaped
 * fabric. Born ticks are globally unique (node-striped slots inside
 * each gap window) so no two frames ever race for the same egress at
 * the same tick — the property that makes byte-identity exact (see
 * DESIGN.md §16).
 */
struct TestSender : NetEndpoint
{
    EventQueue &eq;
    const PodFabricSpec &spec;
    std::uint32_t id;
    std::uint32_t frames;
    Tick gap;
    EthLink *access = nullptr;
    LatencyHistogram *hist = nullptr;
    std::uint64_t *sent = nullptr;
    std::uint64_t *rcvd = nullptr;

    TestSender(EventQueue &eq_, const PodFabricSpec &spec_,
               std::uint32_t id_, std::uint32_t frames_, Tick gap_)
        : eq(eq_), spec(spec_), id(id_), frames(frames_), gap(gap_)
    {
    }

    Tick
    born(std::uint32_t i) const
    {
        Tick slot = gap / spec.totalNodes();
        return usToTicks(1) + Tick(i) * gap + Tick(id) * slot +
               (std::uint64_t(id) * 2654435761u + i * 40503u) %
                   slot;
    }

    void
    start()
    {
        eq.schedule(born(0), [this] { fire(0); });
    }

    void
    fire(std::uint32_t i)
    {
        // Cycle destinations across every other leaf so frames cross
        // both pod and spine shard boundaries.
        std::uint32_t n = spec.totalNodes();
        std::uint32_t dst = (id + 1 + (i * 37) % (n - 1)) % n;
        if (dst == id)
            dst = (dst + 1) % n;
        PacketPtr pkt = makePacket(eq, 512, id, dst);
        pkt->flowId = std::uint64_t(id) * frames + i;
        pkt->born = eq.curTick();
        ++*sent;
        access->send(this, pkt);
        if (i + 1 < frames)
            eq.schedule(born(i + 1), [this, i] { fire(i + 1); });
    }

    void
    deliver(const PacketPtr &pkt) override
    {
        hist->sample(eq.curTick() - pkt->born);
        ++*rcvd;
    }
};

PodFabricSpec
testSpec()
{
    PodFabricSpec spec;
    spec.pods = 4;
    spec.leavesPerPod = 2;
    spec.spines = 4;
    spec.nodesPerLeaf = 4; // 32 nodes
    spec.eth.switchQueueFrames = 0; // lossless: sent must == rcvd
    spec.eth.ecnThresholdFrames = 0;
    return spec;
}

constexpr std::uint32_t kFrames = 24;
constexpr Tick kGap = usToTicks(2);
constexpr Tick kHorizon = usToTicks(1) + kFrames * kGap +
                          usToTicks(200);

/** The monolithic golden: same fabric shape and workload on the
 *  pre-existing single-EventQueue LeafSpineTopology. */
TrafficResult
runMonolithic()
{
    PodFabricSpec spec = testSpec();
    EventQueue eq;
    LeafSpineTopology topo(eq, "mono", spec.totalLeaves(),
                           spec.spines, spec.eth);
    LatencyHistogram hist;
    std::uint64_t sent = 0, rcvd = 0;
    std::vector<std::unique_ptr<TestSender>> nodes;
    for (std::uint32_t n = 0; n < spec.totalNodes(); ++n) {
        auto node = std::make_unique<TestSender>(eq, spec, n,
                                                 kFrames, kGap);
        node->access =
            &topo.attach(n, spec.leafOf(n), node.get());
        node->hist = &hist;
        node->sent = &sent;
        node->rcvd = &rcvd;
        node->start();
        nodes.push_back(std::move(node));
    }
    TrafficResult r;
    r.executed = eq.runUntil(kHorizon);
    r.digest = hist.digest();
    r.sent = sent;
    r.rcvd = rcvd;
    r.fabric = topo.fabricFrames();
    return r;
}

TrafficResult
runSharded(unsigned shards, ParallelSim::Mode mode)
{
    PodFabricSpec spec = testSpec();
    ParallelSim sim(shards, spec.lookahead(), mode);
    struct Slice
    {
        std::string digest;
        std::uint64_t sent = 0, rcvd = 0, fabric = 0;
    };
    std::vector<Slice> slices(shards);
    LatencyHistogram merged; // merged from per-shard digests below

    std::vector<LatencyHistogram> hists(shards);
    sim.run(kHorizon, [&spec, &slices, &hists](ShardHost &host) {
        struct Ctx
        {
            std::unique_ptr<PodFabricShard> fabric;
            std::vector<std::unique_ptr<TestSender>> nodes;
            LatencyHistogram hist;
            std::uint64_t sent = 0, rcvd = 0;
        };
        auto ctx = std::make_shared<Ctx>();
        ctx->fabric = std::make_unique<PodFabricShard>(host, "fab",
                                                       spec);
        for (std::uint32_t n = 0; n < spec.totalNodes(); ++n) {
            if (!ctx->fabric->ownsNode(n))
                continue;
            auto node = std::make_unique<TestSender>(
                host.eventq(), spec, n, kFrames, kGap);
            node->access = &ctx->fabric->attach(n, node.get());
            node->hist = &ctx->hist;
            node->sent = &ctx->sent;
            node->rcvd = &ctx->rcvd;
            node->start();
            ctx->nodes.push_back(std::move(node));
        }
        Slice *slice = &slices[host.shardId()];
        LatencyHistogram *hist = &hists[host.shardId()];
        host.atEnd([ctx, slice, hist] {
            *hist = ctx->hist;
            slice->sent = ctx->sent;
            slice->rcvd = ctx->rcvd;
            slice->fabric = ctx->fabric->fabricFrames();
        });
        host.hold(std::move(ctx));
    });

    TrafficResult r;
    for (unsigned s = 0; s < shards; ++s) {
        merged.merge(hists[s]);
        r.sent += slices[s].sent;
        r.rcvd += slices[s].rcvd;
        r.fabric += slices[s].fabric;
    }
    r.digest = merged.digest();
    for (const ShardRunStats &s : sim.shardStats())
        r.executed += s.executed;
    return r;
}

} // namespace

TEST(ParallelSim, ShardedFabricMatchesMonolithicGolden)
{
    // The heart of the determinism contract: the pod-sharded
    // decomposition at ANY shard count, in BOTH modes, reproduces the
    // monolithic single-EventQueue topology byte-for-byte — same
    // latency population (exact digest), same frame counts, same
    // event count.
    setQuiet(true);
    TrafficResult golden = runMonolithic();
    ASSERT_GT(golden.sent, 0u);
    ASSERT_EQ(golden.rcvd, golden.sent); // lossless config

    for (unsigned shards : {1u, 2u, 4u}) {
        TrafficResult det = runSharded(
            shards, ParallelSim::Mode::DeterministicMerge);
        EXPECT_EQ(det.digest, golden.digest) << "det-merge shards="
                                             << shards;
        EXPECT_EQ(det.sent, golden.sent);
        EXPECT_EQ(det.rcvd, golden.rcvd);
        EXPECT_EQ(det.fabric, golden.fabric);
        EXPECT_EQ(det.executed, golden.executed);

        TrafficResult fr =
            runSharded(shards, ParallelSim::Mode::FreeRun);
        EXPECT_EQ(fr.digest, golden.digest) << "free-run shards="
                                            << shards;
        EXPECT_EQ(fr.executed, golden.executed);
        EXPECT_EQ(fr.rcvd, golden.rcvd);
    }
}

TEST(ParallelSim, AsymmetricLoadStaysDeterministic)
{
    // Only pod 0's nodes transmit: shard 0 is busy while the others
    // mostly exchange null quanta. The skewed schedule must not
    // change results between modes (exercises the wait/skew logic
    // rather than the steady state).
    setQuiet(true);
    PodFabricSpec spec = testSpec();

    auto runOneSided = [&spec](unsigned shards,
                               ParallelSim::Mode mode) {
        ParallelSim sim(shards, spec.lookahead(), mode);
        std::vector<LatencyHistogram> hists(shards);
        std::vector<std::uint64_t> rcvd(shards, 0);
        sim.run(kHorizon, [&](ShardHost &host) {
            struct Ctx
            {
                std::unique_ptr<PodFabricShard> fabric;
                std::vector<std::unique_ptr<TestSender>> nodes;
                LatencyHistogram hist;
                std::uint64_t sent = 0, rcvd = 0;
            };
            auto ctx = std::make_shared<Ctx>();
            ctx->fabric = std::make_unique<PodFabricShard>(
                host, "fab", spec);
            for (std::uint32_t n = 0; n < spec.totalNodes(); ++n) {
                if (!ctx->fabric->ownsNode(n))
                    continue;
                auto node = std::make_unique<TestSender>(
                    host.eventq(), spec, n, kFrames, kGap);
                node->access = &ctx->fabric->attach(n, node.get());
                node->hist = &ctx->hist;
                node->sent = &ctx->sent;
                node->rcvd = &ctx->rcvd;
                if (spec.podOf(n) == 0)
                    node->start(); // only pod 0 transmits
                ctx->nodes.push_back(std::move(node));
            }
            LatencyHistogram *hist = &hists[host.shardId()];
            std::uint64_t *r = &rcvd[host.shardId()];
            host.atEnd([ctx, hist, r] {
                *hist = ctx->hist;
                *r = ctx->rcvd;
            });
            host.hold(std::move(ctx));
        });
        LatencyHistogram merged;
        std::uint64_t total = 0;
        for (unsigned s = 0; s < shards; ++s) {
            merged.merge(hists[s]);
            total += rcvd[s];
        }
        return std::make_pair(merged.digest(), total);
    };

    auto golden =
        runOneSided(1, ParallelSim::Mode::DeterministicMerge);
    EXPECT_GT(golden.second, 0u);
    auto det4 =
        runOneSided(4, ParallelSim::Mode::DeterministicMerge);
    auto free4 = runOneSided(4, ParallelSim::Mode::FreeRun);
    EXPECT_EQ(det4, golden);
    EXPECT_EQ(free4, golden);
}

// -- Pool confinement across shard teardown --------------------------

TEST(ParallelSim, ShardPoolsDrainCleanOnTeardown)
{
    // Free-run shards churn pooled Packets on their own threads (the
    // cross-shard copies materialize in the CONSUMER's pool). After
    // teardown each shard's drained PoolStats must show zero
    // outstanding objects — pooled objects never crossed a thread —
    // and the drain totals aggregate like any other PoolStats.
    setQuiet(true);
    PodFabricSpec spec = testSpec();
    ParallelSim sim(4, spec.lookahead(),
                    ParallelSim::Mode::FreeRun);
    sim.run(kHorizon, [&spec](ShardHost &host) {
        struct Ctx
        {
            std::unique_ptr<PodFabricShard> fabric;
            std::vector<std::unique_ptr<TestSender>> nodes;
            LatencyHistogram hist;
            std::uint64_t sent = 0, rcvd = 0;
        };
        auto ctx = std::make_shared<Ctx>();
        ctx->fabric =
            std::make_unique<PodFabricShard>(host, "fab", spec);
        for (std::uint32_t n = 0; n < spec.totalNodes(); ++n) {
            if (!ctx->fabric->ownsNode(n))
                continue;
            auto node = std::make_unique<TestSender>(
                host.eventq(), spec, n, kFrames, kGap);
            node->access = &ctx->fabric->attach(n, node.get());
            node->hist = &ctx->hist;
            node->sent = &ctx->sent;
            node->rcvd = &ctx->rcvd;
            node->start();
            ctx->nodes.push_back(std::move(node));
        }
        host.hold(std::move(ctx));
    });

    PoolStats total;
    for (const ShardRunStats &s : sim.shardStats()) {
        // Every pooled object a shard allocated went back to its own
        // thread's pool before the drain.
        EXPECT_EQ(s.pools.outstanding, 0u);
        // The drain returned the cached objects to the heap.
        EXPECT_GT(s.pools.heapAllocs + s.pools.reuses, 0u);
        total += s.pools;
    }
    // Aggregation across shards behaves like the sweep-worker drain:
    // totals add, and at least the packet traffic shows up.
    EXPECT_EQ(total.outstanding, 0u);
    EXPECT_GT(total.heapAllocs, 0u);
}
