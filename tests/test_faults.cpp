/**
 * @file
 * Tests for the fault-injection framework and recovery paths:
 * deterministic fault schedules, ECC error accounting, RowClone
 * fallback, the driver TX-hang watchdog, the EventQueue health layer,
 * and end-to-end survival of a reliable flow across a forced device
 * reset.
 */

#include <gtest/gtest.h>

#include "kernel/NetdimmDriver.hh"
#include "mem/MemoryController.hh"
#include "sim/Fault.hh"
#include "transport/FaultInjector.hh"
#include "workload/IperfFlow.hh"

using namespace netdimm;

namespace
{

struct QuietScope
{
    QuietScope() { setQuiet(true); }
    ~QuietScope() { setQuiet(false); }
};

/** Two NetDIMM nodes on one link. */
struct NodePair
{
    SystemConfig sys;
    EventQueue eq;
    std::unique_ptr<Node> tx, rx;
    std::unique_ptr<EthLink> link;

    explicit NodePair(const SystemConfig &cfg)
        : sys(cfg)
    {
        tx = std::make_unique<Node>(eq, "tx", sys, 0);
        rx = std::make_unique<Node>(eq, "rx", sys, 1);
        link = std::make_unique<EthLink>(eq, "wire", sys.eth);
        link->connect(tx->endpoint(), rx->endpoint());
        tx->connectTo(*link);
        rx->connectTo(*link);
    }
};

} // namespace

// ---------------------------------------------------------------------
// Fault framework: deterministic, order-independent schedules
// ---------------------------------------------------------------------

TEST(FaultFramework, ScheduleIndependentOfCreationOrder)
{
    FaultRegistry a(42), b(42);
    // Interleave domain creation in different orders; each domain's
    // stream must depend only on (seed, name).
    FaultDomain &a1 = a.domain("mem");
    FaultDomain &a2 = a.domain("dev");
    FaultDomain &b2 = b.domain("dev");
    FaultDomain &b1 = b.domain("mem");
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a1.uniform(), b1.uniform());
        EXPECT_EQ(a2.uniform(), b2.uniform());
    }
}

TEST(FaultFramework, ConsumptionOfOneDomainDoesNotPerturbAnother)
{
    FaultRegistry a(7), b(7);
    // Burn 500 draws from a's "mem" domain only.
    for (int i = 0; i < 500; ++i)
        a.domain("mem").uniform();
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.domain("dev").uniform(), b.domain("dev").uniform());
}

TEST(FaultFramework, DifferentSeedsOrNamesGiveDifferentSchedules)
{
    FaultRegistry a(1), b(2);
    int same_seed_diff = 0, same_name_diff = 0;
    FaultRegistry c(1);
    for (int i = 0; i < 100; ++i) {
        if (a.domain("x").uniform() != b.domain("x").uniform())
            ++same_name_diff;
        if (c.domain("x2").uniform() != c.domain("y2").uniform())
            ++same_seed_diff;
    }
    EXPECT_GT(same_name_diff, 90);
    EXPECT_GT(same_seed_diff, 90);
}

TEST(FaultFramework, SameLeafNameUnderDifferentParentsIsIndependent)
{
    // Hierarchical names: the registry keys domains by the full
    // dotted path, so "a.link" and "b.link" -- the same leaf name
    // under different parents -- must draw from different streams,
    // and a second registry with the same master seed must replay
    // each of them exactly.
    FaultRegistry reg(21), replay(21);
    FaultDomain &a = reg.domain("a.link");
    FaultDomain &b = reg.domain("b.link");
    FaultDomain &ra = replay.domain("a.link");
    FaultDomain &rb = replay.domain("b.link");
    int differs = 0;
    for (int i = 0; i < 200; ++i) {
        double da = a.uniform(), db = b.uniform();
        if (da != db)
            ++differs;
        EXPECT_EQ(da, ra.uniform());
        EXPECT_EQ(db, rb.uniform());
    }
    EXPECT_GT(differs, 190);
}

TEST(FaultFramework, AggregateLedgerClosesOnReplayedFlapSchedules)
{
    // Drive two links from schedules *derived from* registry draws,
    // replay with the same master seed, and check the aggregate
    // ledger: every down edge recovered, identical counts both runs.
    auto run = [](std::uint64_t seed) {
        EventQueue eq;
        EthConfig cfg;
        FaultRegistry reg(seed);
        EthLink la(eq, "a.link", cfg), lb(eq, "b.link", cfg);
        for (EthLink *l : {&la, &lb}) {
            FaultDomain &d = reg.domain(l->name());
            l->setFaultDomain(&d);
            Tick at = 100;
            for (int f = 0; f < 3; ++f) {
                at += 100 + Tick(d.uniform() * 100000);
                Tick dur = 50 + Tick(d.uniform() * 5000);
                l->scheduleFlap(at, dur);
                at += dur;
            }
        }
        eq.run();
        EXPECT_EQ(reg.injected(), 6u);
        EXPECT_TRUE(reg.ledgerClosed());
        return std::make_tuple(reg.injected(), reg.recovered(),
                               reg.unrecovered(), eq.curTick());
    };
    EXPECT_EQ(run(31), run(31));
    EXPECT_NE(std::get<3>(run(31)), std::get<3>(run(32)));
}

TEST(FaultFramework, LedgerCountsInjectionsAndRecoveries)
{
    FaultRegistry reg(3);
    FaultDomain &d = reg.domain("dev");
    EXPECT_FALSE(d.inject(0.0));
    EXPECT_TRUE(d.inject(1.0));
    EXPECT_EQ(d.decisions(), 2u);
    EXPECT_EQ(d.injected(), 1u);
    d.noteRecovered();
    EXPECT_EQ(reg.injected(), 1u);
    EXPECT_EQ(reg.recovered(), 1u);
    EXPECT_EQ(reg.unrecovered(), 0u);
    d.noteUnrecovered();
    EXPECT_EQ(reg.unrecovered(), 1u);
}

TEST(FaultFramework, RegistryBackedFaultInjectorIsDeterministic)
{
    FaultRegistry a(11), b(11);
    FaultInjector ia(a, "wire", 0.1, 0.05);
    FaultInjector ib(b, "wire", 0.1, 0.05);
    for (int i = 0; i < 2000; ++i) {
        PacketPtr p = makePacket(64);
        EXPECT_EQ(int(ia.judge(p)), int(ib.judge(p)));
    }
    EXPECT_GT(ia.framesDropped(), 0u);
    EXPECT_GT(ia.framesCorrupted(), 0u);
    // Drops and corruptions both land in the domain ledger.
    EXPECT_EQ(a.domain("wire").injected(),
              ia.framesDropped() + ia.framesCorrupted());
}

// ---------------------------------------------------------------------
// EventQueue health layer
// ---------------------------------------------------------------------

TEST(EventQueueHealth, DetectsDeadlockWhenWorkOutstanding)
{
    QuietScope q;
    EventQueue eq;
    std::uint64_t outstanding = 1;
    eq.registerHealthProbe("stuck", [&] { return outstanding; });
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_EQ(eq.deadlocksDetected(), 1u);
}

TEST(EventQueueHealth, NoDeadlockWhenProbesReportIdle)
{
    EventQueue eq;
    std::uint64_t outstanding = 1;
    std::size_t id =
        eq.registerHealthProbe("worker", [&] { return outstanding; });
    eq.schedule(100, [&] {
        outstanding = 0;
        eq.heartbeat(id);
    });
    eq.run();
    EXPECT_EQ(eq.deadlocksDetected(), 0u);
    EXPECT_EQ(eq.lastHeartbeat(id), Tick(100));
}

TEST(EventQueueHealth, UnregisteredProbeIsIgnored)
{
    EventQueue eq;
    std::size_t id = eq.registerHealthProbe("gone", [] { return 5u; });
    eq.unregisterHealthProbe(id);
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_EQ(eq.deadlocksDetected(), 0u);
}

TEST(EventQueueHealth, HeartbeatAfterUnregisterIsIgnored)
{
    EventQueue eq;
    std::size_t id = eq.registerHealthProbe("gone", [] { return 0u; });
    eq.schedule(50, [&] {
        eq.unregisterHealthProbe(id);
        eq.heartbeat(id);       // stale owner still beating: ignored
        eq.heartbeat(id + 100); // out-of-range id: ignored
    });
    eq.run();
    EXPECT_EQ(eq.lastHeartbeat(id), 0u);
    EXPECT_EQ(eq.lastHeartbeat(id + 100), 0u);
}

TEST(EventQueueHealth, TickLimitStopsRunawaySimulation)
{
    QuietScope q;
    EventQueue eq;
    int fired = 0;
    // Self-rescheduling event: would run forever without the limit.
    std::function<void()> again = [&] {
        ++fired;
        eq.scheduleRel(100, again);
    };
    eq.schedule(100, again);
    eq.setTickLimit(1000);
    eq.run();
    EXPECT_TRUE(eq.tickLimitExceeded());
    EXPECT_LE(eq.curTick(), Tick(1000));
    EXPECT_GT(fired, 0);
    EXPECT_LE(fired, 10);
}

// ---------------------------------------------------------------------
// ECC faults at the memory controller
// ---------------------------------------------------------------------

namespace
{

struct McFixture
{
    EventQueue eq;
    SystemConfig cfg;
    FaultRegistry reg{1};
    MemoryController mc;

    McFixture()
        : mc(eq, "mc", cfg.dram, perChannel(cfg.hostMem), cfg.memCtrl)
    {}

    static DramGeometry
    perChannel(DramGeometry g)
    {
        g.channels = 1;
        return g;
    }

    MemRequestPtr
    blockingRead(Addr addr)
    {
        auto req = makeMemRequest(addr, 64, false, MemSource::HostCpu,
                                  nullptr);
        Tick done = 0;
        req->onDone = [&](Tick t) { done = t; };
        mc.access(req);
        eq.run();
        req->issued = done; // stash completion tick for callers
        return req;
    }
};

} // namespace

TEST(MemoryFaults, CorrectableEccDelaysByScrubLatency)
{
    SystemConfig cfg;
    Tick clean;
    {
        McFixture f;
        clean = f.blockingRead(0)->issued;
    }
    McFixture f;
    f.cfg.faults.eccCorrectableProb = 1.0;
    f.mc.setFaultInjection(&f.reg.domain("mem"), &f.cfg.faults);
    MemRequestPtr req = f.blockingRead(0);
    EXPECT_FALSE(req->poisoned);
    EXPECT_EQ(req->issued, clean + f.cfg.faults.eccScrubLatency);
    EXPECT_EQ(f.mc.eccCorrectable(), 1u);
    EXPECT_EQ(f.mc.eccUncorrectable(), 0u);
    // In-line correction counts as recovered immediately.
    EXPECT_EQ(f.reg.domain("mem").recovered(), 1u);
    EXPECT_EQ(f.reg.unrecovered(), 0u);
}

TEST(MemoryFaults, UncorrectableEccPoisonsTheRequest)
{
    McFixture f;
    f.cfg.faults.eccUncorrectableProb = 1.0;
    f.mc.setFaultInjection(&f.reg.domain("mem"), &f.cfg.faults);
    MemRequestPtr req = f.blockingRead(64);
    EXPECT_TRUE(req->poisoned);
    EXPECT_EQ(f.mc.eccUncorrectable(), 1u);
    EXPECT_EQ(f.reg.domain("mem").injected(), 1u);
}

TEST(MemoryFaults, ZeroRateLeavesTimingUntouched)
{
    Tick clean;
    {
        McFixture f;
        clean = f.blockingRead(0)->issued;
    }
    McFixture f;
    f.cfg.faults.eccCorrectableProb = 0.0;
    f.cfg.faults.eccUncorrectableProb = 0.0;
    f.mc.setFaultInjection(&f.reg.domain("mem"), &f.cfg.faults);
    EXPECT_EQ(f.blockingRead(0)->issued, clean);
    EXPECT_GT(f.reg.domain("mem").decisions(), 0u);
    EXPECT_EQ(f.reg.injected(), 0u);
}

// ---------------------------------------------------------------------
// RowClone failure -> CopyEngine fallback
// ---------------------------------------------------------------------

TEST(RowCloneFallback, FailedClonesFallBackAndStillDeliver)
{
    QuietScope q;
    SystemConfig sys;
    sys.nic = NicKind::NetDimm;
    sys.faults.enabled = true;
    sys.faults.rowCloneFailProb = 1.0;
    NodePair p(sys);

    int delivered = 0;
    p.rx->setReceiveHandler(
        [&](const PacketPtr &, Tick) { ++delivered; });
    for (int i = 0; i < 8; ++i)
        p.tx->sendPacket(p.tx->makeTxPacket(1460, p.rx->id()));
    p.eq.run();

    auto &drv = static_cast<NetdimmDriver &>(p.rx->driver());
    EXPECT_EQ(delivered, 8);
    EXPECT_GT(drv.cloneFallbacks(), 0u);
    EXPECT_EQ(drv.cloneFallbacks(),
              p.rx->netdimm()->rowCloneEngine().failedClones());
    // Every aborted clone was recovered by the fallback copy.
    FaultRegistry *reg = p.rx->faults();
    ASSERT_NE(reg, nullptr);
    const FaultDomain *d = reg->find("rx.netdimm.rowclone");
    ASSERT_NE(d, nullptr);
    EXPECT_GT(d->injected(), 0u);
    EXPECT_EQ(d->recovered(), d->injected());
}

// ---------------------------------------------------------------------
// TX-hang watchdog
// ---------------------------------------------------------------------

TEST(TxWatchdog, NetdimmDriverRecoversFromForcedHang)
{
    QuietScope q;
    SystemConfig sys;
    sys.nic = NicKind::NetDimm;
    NodePair p(sys);

    int delivered = 0;
    p.rx->setReceiveHandler(
        [&](const PacketPtr &, Tick) { ++delivered; });

    p.tx->netdimm()->forceHang();
    p.tx->sendPacket(p.tx->makeTxPacket(1460, p.rx->id()));
    p.eq.run();

    // The watchdog must have detected the stall and reset the device;
    // the hung packet was dropped (raw mode has no retransmission).
    EXPECT_GE(p.tx->driver().txHangRecoveries(), 1u);
    EXPECT_GE(p.tx->netdimm()->resets(), 1u);
    EXPECT_FALSE(p.tx->netdimm()->hung());
    EXPECT_EQ(p.tx->driver().skbsDroppedOnReset(), 1u);
    EXPECT_EQ(delivered, 0);
    // Detection takes at least the configured stall age.
    EXPECT_GE(p.tx->driver().recoveryLatencyUs().min(),
              ticksToUs(sys.faults.txHangTimeout) - 1e-9);

    // The interface works again after recovery.
    p.tx->sendPacket(p.tx->makeTxPacket(1460, p.rx->id()));
    p.eq.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(p.eq.deadlocksDetected(), 0u);
}

TEST(TxWatchdog, StandardDriverRecoversFromForcedHang)
{
    QuietScope q;
    SystemConfig sys;
    sys.nic = NicKind::Discrete;
    NodePair p(sys);

    int delivered = 0;
    p.rx->setReceiveHandler(
        [&](const PacketPtr &, Tick) { ++delivered; });

    p.tx->nic()->forceHang();
    p.tx->sendPacket(p.tx->makeTxPacket(1460, p.rx->id()));
    p.eq.run();

    EXPECT_GE(p.tx->driver().txHangRecoveries(), 1u);
    EXPECT_GE(p.tx->nic()->resets(), 1u);
    EXPECT_FALSE(p.tx->nic()->hung());
    EXPECT_EQ(delivered, 0);

    p.tx->sendPacket(p.tx->makeTxPacket(1460, p.rx->id()));
    p.eq.run();
    EXPECT_EQ(delivered, 1);
}

TEST(TxWatchdog, DoesNotFireOnHealthyTraffic)
{
    SystemConfig sys;
    sys.nic = NicKind::NetDimm;
    NodePair p(sys);
    p.rx->setReceiveHandler([](const PacketPtr &, Tick) {});
    for (int i = 0; i < 32; ++i)
        p.tx->sendPacket(p.tx->makeTxPacket(1460, p.rx->id()));
    p.eq.run();
    EXPECT_EQ(p.tx->driver().txHangRecoveries(), 0u);
    EXPECT_EQ(p.tx->netdimm()->resets(), 0u);
    EXPECT_EQ(p.eq.deadlocksDetected(), 0u);
}

// ---------------------------------------------------------------------
// End to end: reliable flow across a mid-flow device reset
// ---------------------------------------------------------------------

TEST(EndToEnd, ReliableFlowSurvivesMidFlowDeviceReset)
{
    QuietScope q;
    SystemConfig sys;
    sys.nic = NicKind::NetDimm;
    NodePair p(sys);

    IperfFlow flow(p.eq, "iperf", *p.tx, *p.rx, 1460, 16, 1);
    flow.enableReliable(sys.transport);
    flow.start();

    // Wedge the sender's device mid-flow; the watchdog resets it and
    // the transport's RTO path retransmits whatever was lost.
    p.eq.schedule(usToTicks(300), [&] { p.tx->netdimm()->forceHang(); });
    p.eq.run(usToTicks(1500));
    flow.stop();
    p.eq.run();

    EXPECT_GE(p.tx->driver().txHangRecoveries(), 1u);
    EXPECT_GE(p.tx->netdimm()->resets(), 1u);
    EXPECT_FALSE(p.tx->netdimm()->hung());
    EXPECT_GT(flow.retransmissions(), 0u);
    EXPECT_EQ(flow.abortedFlows(), 0u);
    // 100% delivery, no duplicates: the receiver delivered exactly the
    // bytes the sender enqueued, each segment exactly once.
    EXPECT_GT(flow.enqueuedBytes(), 0u);
    EXPECT_EQ(flow.deliveredBytes(), flow.enqueuedBytes());
    EXPECT_EQ(p.eq.deadlocksDetected(), 0u);
}

// ---------------------------------------------------------------------
// Whole-sim determinism under faults
// ---------------------------------------------------------------------

namespace
{

struct ReplayStats
{
    std::uint64_t delivered = 0;
    std::uint64_t injected = 0;
    std::uint64_t retx = 0;
    Tick endTick = 0;

    bool
    operator==(const ReplayStats &o) const
    {
        return delivered == o.delivered && injected == o.injected &&
               retx == o.retx && endTick == o.endTick;
    }
};

ReplayStats
runFaultyReplay(std::uint64_t seed)
{
    SystemConfig sys;
    sys.nic = NicKind::NetDimm;
    sys.seed = seed;
    sys.faults.enabled = true;
    sys.faults.eccCorrectableProb = 0.005;
    sys.faults.dmaDropProb = 0.002;
    sys.faults.rowCloneFailProb = 0.01;
    NodePair p(sys);

    IperfFlow flow(p.eq, "iperf", *p.tx, *p.rx, 1460, 16, 1);
    flow.enableReliable(sys.transport);
    flow.start();
    p.eq.run(usToTicks(400));
    flow.stop();
    p.eq.run();

    ReplayStats r;
    r.delivered = flow.deliveredBytes();
    r.retx = flow.retransmissions();
    r.injected =
        p.tx->faults()->injected() + p.rx->faults()->injected();
    r.endTick = p.eq.curTick();
    return r;
}

} // namespace

TEST(FaultReplay, SameSeedReproducesTheSameRun)
{
    QuietScope q;
    ReplayStats a = runFaultyReplay(9);
    ReplayStats b = runFaultyReplay(9);
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.injected, 0u);
    EXPECT_GT(a.delivered, 0u);

    ReplayStats c = runFaultyReplay(10);
    // A different seed must give a different fault schedule (the
    // counts colliding on every stat at once is vanishingly likely).
    EXPECT_FALSE(a == c);
}
