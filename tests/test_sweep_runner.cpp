/**
 * @file
 * Tests for the parallel sweep harness (src/harness/SweepRunner.hh)
 * and the instance-scoped simulation state it depends on:
 *
 *  - jobs-invariance: the serialized result table of a mini sweep is
 *    byte-identical at jobs=1 and jobs=4 (the tentpole determinism
 *    guarantee);
 *  - a throwing cell surfaces as SweepCellError carrying its grid
 *    coordinates while every other cell still completes;
 *  - running the SAME cell twice in one process yields identical
 *    stats (regression for the old process-global packet id counter);
 *  - packet ids are minted per EventQueue, starting at 1;
 *  - drainWorkerPools() reports per-worker pool totals that account
 *    for the whole grid.
 */

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/SweepRunner.hh"
#include "kernel/Node.hh"
#include "net/Link.hh"
#include "net/Packet.hh"

using namespace netdimm;

namespace
{

struct MiniResult
{
    std::uint64_t bytes = 0;
    double meanUs = 0.0;
    std::uint64_t firstId = 0;
    std::uint64_t idsMinted = 0;
};

/**
 * A small but real simulation cell: two nodes, one link, a fixed
 * paced packet train. Deterministic given (kind, npackets), and
 * built entirely inside the factory per the cell isolation contract.
 */
MiniResult
runMiniCell(NicKind kind, int npackets)
{
    SystemConfig cfg;
    cfg.nic = kind;

    EventQueue eq;
    Node tx(eq, "tx", cfg, 0);
    Node rx(eq, "rx", cfg, 1);
    EthLink link(eq, "link", cfg.eth);
    link.connect(tx.endpoint(), rx.endpoint());
    tx.connectTo(link);
    rx.connectTo(link);

    MiniResult r;
    double sum_us = 0.0;
    int n = 0;
    rx.setReceiveHandler([&](const PacketPtr &pkt, Tick) {
        if (r.firstId == 0)
            r.firstId = pkt->id;
        r.bytes += pkt->bytes;
        sum_us += ticksToUs(pkt->oneWayLatency());
        ++n;
    });

    Tick t = 0;
    for (int i = 0; i < npackets; ++i) {
        t += usToTicks(1.0);
        eq.schedule(t, [&tx, &rx, i] {
            tx.sendPacket(tx.makeTxPacket(1460, rx.id(), 1 + (i % 4)));
        });
    }
    eq.run();

    r.meanUs = n ? sum_us / n : 0.0;
    r.idsMinted = eq.packetIdsAllocated();
    return r;
}

std::vector<SweepCell<MiniResult>>
miniGrid()
{
    std::vector<SweepCell<MiniResult>> cells;
    for (NicKind kind : {NicKind::Discrete, NicKind::Integrated,
                         NicKind::NetDimm}) {
        for (int n : {40, 80}) {
            char label[48];
            std::snprintf(label, sizeof(label), "%s n=%d",
                          nicKindName(kind), n);
            cells.push_back(
                {label, [kind, n] { return runMiniCell(kind, n); }});
        }
    }
    return cells;
}

/** Exactly what a bench would print: rows in grid order. */
std::string
serialize(const std::vector<MiniResult> &rows)
{
    std::string out;
    for (const MiniResult &r : rows) {
        char line[128];
        std::snprintf(line, sizeof(line), "%llu %.9f %llu %llu\n",
                      static_cast<unsigned long long>(r.bytes),
                      r.meanUs,
                      static_cast<unsigned long long>(r.firstId),
                      static_cast<unsigned long long>(r.idsMinted));
        out += line;
    }
    return out;
}

} // namespace

TEST(SweepRunner, JobsInvarianceTablesAreByteIdentical)
{
    setQuiet(true);
    SweepRunner seq(1);
    SweepRunner par(4);
    ASSERT_EQ(seq.jobs(), 1u);
    ASSERT_EQ(par.jobs(), 4u);

    std::string table1 = serialize(seq.run(miniGrid()));
    std::string table4 = serialize(par.run(miniGrid()));
    EXPECT_EQ(table1, table4);

    // And the table is non-trivial: packets flowed in every cell.
    EXPECT_EQ(std::count(table1.begin(), table1.end(), '\n'), 6);
    EXPECT_NE(table1.find(" 1 "), std::string::npos);
}

TEST(SweepRunner, ThrowingCellReportsGridCoordinates)
{
    setQuiet(true);
    std::atomic<int> completed{0};

    std::vector<SweepCell<int>> cells;
    for (int i = 0; i < 8; ++i) {
        char label[32];
        std::snprintf(label, sizeof(label), "cell-%d", i);
        cells.push_back({label, [i, &completed]() -> int {
                             if (i == 3)
                                 throw std::runtime_error("boom-3");
                             if (i == 5)
                                 throw std::runtime_error("boom-5");
                             ++completed;
                             return i;
                         }});
    }

    SweepRunner runner(4);
    bool threw = false;
    try {
        runner.run(std::move(cells));
    } catch (const SweepCellError &e) {
        threw = true;
        // The FIRST failing cell in grid order, no matter which
        // worker hit its exception first.
        EXPECT_EQ(e.index(), 3u);
        EXPECT_EQ(e.label(), "cell-3");
        EXPECT_NE(std::string(e.what()).find("boom-3"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("cell-3"),
                  std::string::npos);
    }
    EXPECT_TRUE(threw);
    // The failure did not tear down the sweep: the other six cells
    // all ran to completion.
    EXPECT_EQ(completed.load(), 6);
}

TEST(SweepRunner, SameCellTwiceInProcessIsIdentical)
{
    // Regression for the process-global packet id counter: a second
    // in-process run of the same cell used to see different packet
    // ids. With ids minted per EventQueue the two runs are
    // indistinguishable, firstId included.
    setQuiet(true);
    MiniResult a = runMiniCell(NicKind::NetDimm, 60);
    MiniResult b = runMiniCell(NicKind::NetDimm, 60);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.meanUs, b.meanUs);
    EXPECT_EQ(a.firstId, b.firstId);
    EXPECT_EQ(a.idsMinted, b.idsMinted);
    // And the first id of a fresh simulation is 1.
    EXPECT_EQ(a.firstId, 1u);
}

TEST(SweepRunner, PacketIdsArePerEventQueue)
{
    EventQueue eq1;
    EventQueue eq2;
    PacketPtr a1 = makePacket(eq1, 64, 0, 1);
    PacketPtr a2 = makePacket(eq1, 64, 0, 1);
    PacketPtr b1 = makePacket(eq2, 64, 0, 1);
    EXPECT_EQ(a1->id, 1u);
    EXPECT_EQ(a2->id, 2u);
    EXPECT_EQ(b1->id, 1u);
    EXPECT_EQ(eq1.packetIdsAllocated(), 2u);
    EXPECT_EQ(eq2.packetIdsAllocated(), 1u);
}

TEST(SweepRunner, DrainWorkerPoolsReportsPerWorkerTotals)
{
    setQuiet(true);
    SweepRunner runner(2);
    runner.run(miniGrid());

    std::vector<WorkerPoolStats> per = runner.drainWorkerPools();
    ASSERT_EQ(per.size(), 2u);
    EXPECT_EQ(per[0].worker, 0u);
    EXPECT_EQ(per[1].worker, 1u);

    std::uint64_t cells = 0;
    PoolStats total;
    for (const WorkerPoolStats &w : per) {
        cells += w.cells;
        total += w.pools;
    }
    // Every cell ran on some worker, and the grid allocated pooled
    // objects on the workers (never on this thread).
    EXPECT_EQ(cells, 6u);
    EXPECT_GT(total.heapAllocs + total.reuses, 0u);
    // Cells confine their pooled objects, so nothing is still out.
    EXPECT_EQ(total.outstanding, 0u);

    // The drain emptied the workers' free lists: a second rendezvous
    // reports nothing cached.
    std::vector<WorkerPoolStats> again = runner.drainWorkerPools();
    PoolStats after;
    for (const WorkerPoolStats &w : again)
        after += w.pools;
    EXPECT_EQ(after.cached, 0u);
    EXPECT_EQ(runner.cellsExecuted(), 6u);
}

TEST(SweepRunner, ParseSweepCli)
{
    // Valid: --jobs N, --short, and an allowlisted extra flag.
    SweepCli cli;
    std::string err;
    ASSERT_TRUE(tryParseSweepCli({"--jobs", "3", "--short",
                                  "--reliable"},
                                 {"--reliable"}, cli, err))
        << err;
    EXPECT_EQ(cli.jobs, 3u);
    EXPECT_TRUE(cli.shortMode);
    ASSERT_EQ(cli.rest.size(), 1u);
    EXPECT_EQ(cli.rest[0], "--reliable");

    // Defaults: no args -> hardware concurrency, long mode.
    SweepCli def;
    ASSERT_TRUE(tryParseSweepCli({}, {}, def, err)) << err;
    EXPECT_GE(def.jobs, 1u);
    EXPECT_FALSE(def.shortMode);
    EXPECT_TRUE(def.rest.empty());
}

TEST(SweepRunner, ParseSweepCliRejectsBadJobs)
{
    SweepCli cli;
    std::string err;

    EXPECT_FALSE(tryParseSweepCli({"--jobs", "0"}, {}, cli, err));
    EXPECT_NE(err.find("--jobs"), std::string::npos);

    EXPECT_FALSE(tryParseSweepCli({"--jobs", "-4"}, {}, cli, err));
    EXPECT_NE(err.find("positive"), std::string::npos);

    EXPECT_FALSE(tryParseSweepCli({"--jobs", "two"}, {}, cli, err));
    EXPECT_NE(err.find("two"), std::string::npos);

    EXPECT_FALSE(tryParseSweepCli({"--jobs", "3x"}, {}, cli, err));

    EXPECT_FALSE(tryParseSweepCli({"--jobs"}, {}, cli, err));
    EXPECT_NE(err.find("requires a value"), std::string::npos);
}

TEST(SweepRunner, ParseSweepCliShards)
{
    // --shards N lands in cli.shards; absence keeps the 0 sentinel
    // (the PDES benches pick their own sweep in that case).
    SweepCli cli;
    std::string err;
    ASSERT_TRUE(tryParseSweepCli({"--shards", "4"}, {}, cli, err))
        << err;
    EXPECT_EQ(cli.shards, 4u);

    SweepCli def;
    ASSERT_TRUE(tryParseSweepCli({}, {}, def, err)) << err;
    EXPECT_EQ(def.shards, 0u);

    // Composes with the rest of the surface.
    SweepCli both;
    ASSERT_TRUE(tryParseSweepCli({"--jobs", "2", "--shards", "8",
                                  "--short"},
                                 {}, both, err))
        << err;
    EXPECT_EQ(both.jobs, 2u);
    EXPECT_EQ(both.shards, 8u);
    EXPECT_TRUE(both.shortMode);
}

TEST(SweepRunner, ParseSweepCliRejectsBadShards)
{
    // Same reject semantics as --jobs: 0, negative, non-numeric,
    // trailing garbage, and a missing value are all hard errors.
    SweepCli cli;
    std::string err;

    EXPECT_FALSE(tryParseSweepCli({"--shards", "0"}, {}, cli, err));
    EXPECT_NE(err.find("--shards"), std::string::npos);

    EXPECT_FALSE(tryParseSweepCli({"--shards", "-2"}, {}, cli, err));
    EXPECT_NE(err.find("positive"), std::string::npos);

    EXPECT_FALSE(tryParseSweepCli({"--shards", "four"}, {}, cli,
                                  err));
    EXPECT_NE(err.find("four"), std::string::npos);

    EXPECT_FALSE(tryParseSweepCli({"--shards", "4x"}, {}, cli, err));

    EXPECT_FALSE(tryParseSweepCli({"--shards"}, {}, cli, err));
    EXPECT_NE(err.find("requires a value"), std::string::npos);
}

TEST(SweepRunner, ParseSweepCliFidelity)
{
    // Each spelling lands in cli.fidelity; absence keeps Packet (the
    // byte-identical default every golden is produced in).
    SweepCli cli;
    std::string err;
    ASSERT_TRUE(tryParseSweepCli({"--fidelity", "hybrid"}, {}, cli,
                                 err))
        << err;
    EXPECT_EQ(cli.fidelity, FidelityMode::Hybrid);

    ASSERT_TRUE(tryParseSweepCli({"--fidelity", "fluid"}, {}, cli,
                                 err))
        << err;
    EXPECT_EQ(cli.fidelity, FidelityMode::Fluid);

    ASSERT_TRUE(tryParseSweepCli({"--fidelity", "packet"}, {}, cli,
                                 err))
        << err;
    EXPECT_EQ(cli.fidelity, FidelityMode::Packet);

    SweepCli def;
    ASSERT_TRUE(tryParseSweepCli({}, {}, def, err)) << err;
    EXPECT_EQ(def.fidelity, FidelityMode::Packet);

    // Composes with the rest of the shared sweep surface.
    SweepCli both;
    ASSERT_TRUE(tryParseSweepCli({"--fidelity", "fluid", "--jobs",
                                  "2", "--short"},
                                 {}, both, err))
        << err;
    EXPECT_EQ(both.fidelity, FidelityMode::Fluid);
    EXPECT_EQ(both.jobs, 2u);
    EXPECT_TRUE(both.shortMode);

    EXPECT_STREQ(fidelityModeName(FidelityMode::Packet), "packet");
    EXPECT_STREQ(fidelityModeName(FidelityMode::Hybrid), "hybrid");
    EXPECT_STREQ(fidelityModeName(FidelityMode::Fluid), "fluid");
}

TEST(SweepRunner, ParseSweepCliRejectsBadFidelity)
{
    // Unknown mode names, a missing value, and case variants are
    // hard errors naming the offending token, like --jobs/--shards.
    SweepCli cli;
    std::string err;

    EXPECT_FALSE(tryParseSweepCli({"--fidelity", "analog"}, {}, cli,
                                  err));
    EXPECT_NE(err.find("analog"), std::string::npos);
    EXPECT_NE(err.find("--fidelity"), std::string::npos);

    EXPECT_FALSE(tryParseSweepCli({"--fidelity", "Packet"}, {}, cli,
                                  err));

    EXPECT_FALSE(tryParseSweepCli({"--fidelity"}, {}, cli, err));
    EXPECT_NE(err.find("requires a value"), std::string::npos);
}

TEST(SweepRunner, ParseSweepCliRejectsUnknownFlags)
{
    SweepCli cli;
    std::string err;

    EXPECT_FALSE(tryParseSweepCli({"--bogus"}, {}, cli, err));
    EXPECT_NE(err.find("--bogus"), std::string::npos);

    // Extra flags are an allowlist, not a prefix match.
    EXPECT_FALSE(tryParseSweepCli({"--reliable2"}, {"--reliable"},
                                  cli, err));

    // Stray positional arguments are rejected too.
    EXPECT_FALSE(tryParseSweepCli({"12"}, {}, cli, err));
}
