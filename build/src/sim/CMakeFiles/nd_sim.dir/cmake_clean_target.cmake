file(REMOVE_RECURSE
  "libnd_sim.a"
)
