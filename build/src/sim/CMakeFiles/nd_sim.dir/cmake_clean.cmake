file(REMOVE_RECURSE
  "CMakeFiles/nd_sim.dir/EventQueue.cc.o"
  "CMakeFiles/nd_sim.dir/EventQueue.cc.o.d"
  "CMakeFiles/nd_sim.dir/Logging.cc.o"
  "CMakeFiles/nd_sim.dir/Logging.cc.o.d"
  "CMakeFiles/nd_sim.dir/Random.cc.o"
  "CMakeFiles/nd_sim.dir/Random.cc.o.d"
  "CMakeFiles/nd_sim.dir/Stats.cc.o"
  "CMakeFiles/nd_sim.dir/Stats.cc.o.d"
  "CMakeFiles/nd_sim.dir/SystemConfig.cc.o"
  "CMakeFiles/nd_sim.dir/SystemConfig.cc.o.d"
  "libnd_sim.a"
  "libnd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
