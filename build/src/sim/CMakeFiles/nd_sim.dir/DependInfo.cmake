
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/EventQueue.cc" "src/sim/CMakeFiles/nd_sim.dir/EventQueue.cc.o" "gcc" "src/sim/CMakeFiles/nd_sim.dir/EventQueue.cc.o.d"
  "/root/repo/src/sim/Logging.cc" "src/sim/CMakeFiles/nd_sim.dir/Logging.cc.o" "gcc" "src/sim/CMakeFiles/nd_sim.dir/Logging.cc.o.d"
  "/root/repo/src/sim/Random.cc" "src/sim/CMakeFiles/nd_sim.dir/Random.cc.o" "gcc" "src/sim/CMakeFiles/nd_sim.dir/Random.cc.o.d"
  "/root/repo/src/sim/Stats.cc" "src/sim/CMakeFiles/nd_sim.dir/Stats.cc.o" "gcc" "src/sim/CMakeFiles/nd_sim.dir/Stats.cc.o.d"
  "/root/repo/src/sim/SystemConfig.cc" "src/sim/CMakeFiles/nd_sim.dir/SystemConfig.cc.o" "gcc" "src/sim/CMakeFiles/nd_sim.dir/SystemConfig.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
