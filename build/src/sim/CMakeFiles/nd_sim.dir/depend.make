# Empty dependencies file for nd_sim.
# This may be replaced when dependencies are built.
