# Empty compiler generated dependencies file for nd_workload.
# This may be replaced when dependencies are built.
