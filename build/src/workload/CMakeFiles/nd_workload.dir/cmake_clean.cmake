file(REMOVE_RECURSE
  "CMakeFiles/nd_workload.dir/IperfFlow.cc.o"
  "CMakeFiles/nd_workload.dir/IperfFlow.cc.o.d"
  "CMakeFiles/nd_workload.dir/LatencyHarness.cc.o"
  "CMakeFiles/nd_workload.dir/LatencyHarness.cc.o.d"
  "CMakeFiles/nd_workload.dir/MemLatencyProbe.cc.o"
  "CMakeFiles/nd_workload.dir/MemLatencyProbe.cc.o.d"
  "CMakeFiles/nd_workload.dir/MlcInjector.cc.o"
  "CMakeFiles/nd_workload.dir/MlcInjector.cc.o.d"
  "CMakeFiles/nd_workload.dir/NfHarness.cc.o"
  "CMakeFiles/nd_workload.dir/NfHarness.cc.o.d"
  "CMakeFiles/nd_workload.dir/TraceFile.cc.o"
  "CMakeFiles/nd_workload.dir/TraceFile.cc.o.d"
  "CMakeFiles/nd_workload.dir/TraceGen.cc.o"
  "CMakeFiles/nd_workload.dir/TraceGen.cc.o.d"
  "libnd_workload.a"
  "libnd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
