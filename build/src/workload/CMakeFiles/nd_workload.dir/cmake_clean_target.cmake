file(REMOVE_RECURSE
  "libnd_workload.a"
)
