file(REMOVE_RECURSE
  "libnd_nvdimm.a"
)
