# Empty dependencies file for nd_nvdimm.
# This may be replaced when dependencies are built.
