file(REMOVE_RECURSE
  "CMakeFiles/nd_nvdimm.dir/NvdimmDevice.cc.o"
  "CMakeFiles/nd_nvdimm.dir/NvdimmDevice.cc.o.d"
  "libnd_nvdimm.a"
  "libnd_nvdimm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nd_nvdimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
