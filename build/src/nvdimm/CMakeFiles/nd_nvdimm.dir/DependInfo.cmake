
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvdimm/NvdimmDevice.cc" "src/nvdimm/CMakeFiles/nd_nvdimm.dir/NvdimmDevice.cc.o" "gcc" "src/nvdimm/CMakeFiles/nd_nvdimm.dir/NvdimmDevice.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nd_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
