file(REMOVE_RECURSE
  "CMakeFiles/nd_netdimm.dir/NCache.cc.o"
  "CMakeFiles/nd_netdimm.dir/NCache.cc.o.d"
  "CMakeFiles/nd_netdimm.dir/NetDimmDevice.cc.o"
  "CMakeFiles/nd_netdimm.dir/NetDimmDevice.cc.o.d"
  "libnd_netdimm.a"
  "libnd_netdimm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nd_netdimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
