# Empty compiler generated dependencies file for nd_netdimm.
# This may be replaced when dependencies are built.
