file(REMOVE_RECURSE
  "libnd_netdimm.a"
)
