file(REMOVE_RECURSE
  "libnd_mem.a"
)
