file(REMOVE_RECURSE
  "CMakeFiles/nd_mem.dir/AddressMap.cc.o"
  "CMakeFiles/nd_mem.dir/AddressMap.cc.o.d"
  "CMakeFiles/nd_mem.dir/MemoryController.cc.o"
  "CMakeFiles/nd_mem.dir/MemoryController.cc.o.d"
  "CMakeFiles/nd_mem.dir/MemorySystem.cc.o"
  "CMakeFiles/nd_mem.dir/MemorySystem.cc.o.d"
  "CMakeFiles/nd_mem.dir/RowClone.cc.o"
  "CMakeFiles/nd_mem.dir/RowClone.cc.o.d"
  "libnd_mem.a"
  "libnd_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nd_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
