# Empty dependencies file for nd_mem.
# This may be replaced when dependencies are built.
