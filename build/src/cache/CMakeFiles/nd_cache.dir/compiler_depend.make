# Empty compiler generated dependencies file for nd_cache.
# This may be replaced when dependencies are built.
