file(REMOVE_RECURSE
  "CMakeFiles/nd_cache.dir/Llc.cc.o"
  "CMakeFiles/nd_cache.dir/Llc.cc.o.d"
  "libnd_cache.a"
  "libnd_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nd_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
