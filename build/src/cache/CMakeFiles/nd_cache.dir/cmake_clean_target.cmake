file(REMOVE_RECURSE
  "libnd_cache.a"
)
