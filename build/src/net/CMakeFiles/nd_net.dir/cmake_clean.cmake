file(REMOVE_RECURSE
  "CMakeFiles/nd_net.dir/Link.cc.o"
  "CMakeFiles/nd_net.dir/Link.cc.o.d"
  "CMakeFiles/nd_net.dir/Packet.cc.o"
  "CMakeFiles/nd_net.dir/Packet.cc.o.d"
  "CMakeFiles/nd_net.dir/Switch.cc.o"
  "CMakeFiles/nd_net.dir/Switch.cc.o.d"
  "CMakeFiles/nd_net.dir/Topology.cc.o"
  "CMakeFiles/nd_net.dir/Topology.cc.o.d"
  "libnd_net.a"
  "libnd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
