# Empty compiler generated dependencies file for nd_net.
# This may be replaced when dependencies are built.
