file(REMOVE_RECURSE
  "libnd_net.a"
)
