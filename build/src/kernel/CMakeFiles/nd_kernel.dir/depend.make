# Empty dependencies file for nd_kernel.
# This may be replaced when dependencies are built.
