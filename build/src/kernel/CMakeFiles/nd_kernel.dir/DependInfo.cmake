
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/AllocCache.cc" "src/kernel/CMakeFiles/nd_kernel.dir/AllocCache.cc.o" "gcc" "src/kernel/CMakeFiles/nd_kernel.dir/AllocCache.cc.o.d"
  "/root/repo/src/kernel/CopyEngine.cc" "src/kernel/CMakeFiles/nd_kernel.dir/CopyEngine.cc.o" "gcc" "src/kernel/CMakeFiles/nd_kernel.dir/CopyEngine.cc.o.d"
  "/root/repo/src/kernel/NetdimmDriver.cc" "src/kernel/CMakeFiles/nd_kernel.dir/NetdimmDriver.cc.o" "gcc" "src/kernel/CMakeFiles/nd_kernel.dir/NetdimmDriver.cc.o.d"
  "/root/repo/src/kernel/Node.cc" "src/kernel/CMakeFiles/nd_kernel.dir/Node.cc.o" "gcc" "src/kernel/CMakeFiles/nd_kernel.dir/Node.cc.o.d"
  "/root/repo/src/kernel/PageAllocator.cc" "src/kernel/CMakeFiles/nd_kernel.dir/PageAllocator.cc.o" "gcc" "src/kernel/CMakeFiles/nd_kernel.dir/PageAllocator.cc.o.d"
  "/root/repo/src/kernel/StandardDriver.cc" "src/kernel/CMakeFiles/nd_kernel.dir/StandardDriver.cc.o" "gcc" "src/kernel/CMakeFiles/nd_kernel.dir/StandardDriver.cc.o.d"
  "/root/repo/src/kernel/Zones.cc" "src/kernel/CMakeFiles/nd_kernel.dir/Zones.cc.o" "gcc" "src/kernel/CMakeFiles/nd_kernel.dir/Zones.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/nd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/nd_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/nd_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/nvdimm/CMakeFiles/nd_nvdimm.dir/DependInfo.cmake"
  "/root/repo/build/src/netdimm/CMakeFiles/nd_netdimm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
