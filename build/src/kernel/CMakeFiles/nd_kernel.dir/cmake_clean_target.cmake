file(REMOVE_RECURSE
  "libnd_kernel.a"
)
