file(REMOVE_RECURSE
  "CMakeFiles/nd_kernel.dir/AllocCache.cc.o"
  "CMakeFiles/nd_kernel.dir/AllocCache.cc.o.d"
  "CMakeFiles/nd_kernel.dir/CopyEngine.cc.o"
  "CMakeFiles/nd_kernel.dir/CopyEngine.cc.o.d"
  "CMakeFiles/nd_kernel.dir/NetdimmDriver.cc.o"
  "CMakeFiles/nd_kernel.dir/NetdimmDriver.cc.o.d"
  "CMakeFiles/nd_kernel.dir/Node.cc.o"
  "CMakeFiles/nd_kernel.dir/Node.cc.o.d"
  "CMakeFiles/nd_kernel.dir/PageAllocator.cc.o"
  "CMakeFiles/nd_kernel.dir/PageAllocator.cc.o.d"
  "CMakeFiles/nd_kernel.dir/StandardDriver.cc.o"
  "CMakeFiles/nd_kernel.dir/StandardDriver.cc.o.d"
  "CMakeFiles/nd_kernel.dir/Zones.cc.o"
  "CMakeFiles/nd_kernel.dir/Zones.cc.o.d"
  "libnd_kernel.a"
  "libnd_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nd_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
