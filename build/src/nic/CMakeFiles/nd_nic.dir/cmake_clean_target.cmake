file(REMOVE_RECURSE
  "libnd_nic.a"
)
