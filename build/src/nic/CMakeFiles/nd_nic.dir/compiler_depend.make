# Empty compiler generated dependencies file for nd_nic.
# This may be replaced when dependencies are built.
