file(REMOVE_RECURSE
  "CMakeFiles/nd_nic.dir/DiscreteNic.cc.o"
  "CMakeFiles/nd_nic.dir/DiscreteNic.cc.o.d"
  "CMakeFiles/nd_nic.dir/IntegratedNic.cc.o"
  "CMakeFiles/nd_nic.dir/IntegratedNic.cc.o.d"
  "libnd_nic.a"
  "libnd_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nd_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
