file(REMOVE_RECURSE
  "CMakeFiles/nd_pcie.dir/PcieLink.cc.o"
  "CMakeFiles/nd_pcie.dir/PcieLink.cc.o.d"
  "libnd_pcie.a"
  "libnd_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nd_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
