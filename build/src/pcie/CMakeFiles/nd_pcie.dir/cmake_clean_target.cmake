file(REMOVE_RECURSE
  "libnd_pcie.a"
)
