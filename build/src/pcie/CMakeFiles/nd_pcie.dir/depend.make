# Empty dependencies file for nd_pcie.
# This may be replaced when dependencies are built.
