# Empty compiler generated dependencies file for fig04_nic_comparison.
# This may be replaced when dependencies are built.
