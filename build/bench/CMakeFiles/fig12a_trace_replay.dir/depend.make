# Empty dependencies file for fig12a_trace_replay.
# This may be replaced when dependencies are built.
