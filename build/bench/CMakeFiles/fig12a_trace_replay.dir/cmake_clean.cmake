file(REMOVE_RECURSE
  "CMakeFiles/fig12a_trace_replay.dir/fig12a_trace_replay.cpp.o"
  "CMakeFiles/fig12a_trace_replay.dir/fig12a_trace_replay.cpp.o.d"
  "fig12a_trace_replay"
  "fig12a_trace_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
