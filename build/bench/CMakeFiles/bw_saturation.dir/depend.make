# Empty dependencies file for bw_saturation.
# This may be replaced when dependencies are built.
