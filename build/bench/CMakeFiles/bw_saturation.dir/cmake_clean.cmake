file(REMOVE_RECURSE
  "CMakeFiles/bw_saturation.dir/bw_saturation.cpp.o"
  "CMakeFiles/bw_saturation.dir/bw_saturation.cpp.o.d"
  "bw_saturation"
  "bw_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
