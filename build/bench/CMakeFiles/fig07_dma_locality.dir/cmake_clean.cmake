file(REMOVE_RECURSE
  "CMakeFiles/fig07_dma_locality.dir/fig07_dma_locality.cpp.o"
  "CMakeFiles/fig07_dma_locality.dir/fig07_dma_locality.cpp.o.d"
  "fig07_dma_locality"
  "fig07_dma_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dma_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
