# Empty dependencies file for fig07_dma_locality.
# This may be replaced when dependencies are built.
