file(REMOVE_RECURSE
  "CMakeFiles/fig05_membw_interference.dir/fig05_membw_interference.cpp.o"
  "CMakeFiles/fig05_membw_interference.dir/fig05_membw_interference.cpp.o.d"
  "fig05_membw_interference"
  "fig05_membw_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_membw_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
