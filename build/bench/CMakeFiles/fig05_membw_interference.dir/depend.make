# Empty dependencies file for fig05_membw_interference.
# This may be replaced when dependencies are built.
