# Empty dependencies file for ablation_rowclone.
# This may be replaced when dependencies are built.
