file(REMOVE_RECURSE
  "CMakeFiles/ablation_rowclone.dir/ablation_rowclone.cpp.o"
  "CMakeFiles/ablation_rowclone.dir/ablation_rowclone.cpp.o.d"
  "ablation_rowclone"
  "ablation_rowclone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rowclone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
