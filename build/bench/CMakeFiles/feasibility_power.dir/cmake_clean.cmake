file(REMOVE_RECURSE
  "CMakeFiles/feasibility_power.dir/feasibility_power.cpp.o"
  "CMakeFiles/feasibility_power.dir/feasibility_power.cpp.o.d"
  "feasibility_power"
  "feasibility_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feasibility_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
