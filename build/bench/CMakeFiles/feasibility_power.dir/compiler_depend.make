# Empty compiler generated dependencies file for feasibility_power.
# This may be replaced when dependencies are built.
