# Empty compiler generated dependencies file for ablation_software.
# This may be replaced when dependencies are built.
