file(REMOVE_RECURSE
  "CMakeFiles/ablation_software.dir/ablation_software.cpp.o"
  "CMakeFiles/ablation_software.dir/ablation_software.cpp.o.d"
  "ablation_software"
  "ablation_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
