
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_software.cpp" "bench/CMakeFiles/ablation_software.dir/ablation_software.cpp.o" "gcc" "bench/CMakeFiles/ablation_software.dir/ablation_software.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/nd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/nd_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/netdimm/CMakeFiles/nd_netdimm.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/nd_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/nd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/nd_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/nvdimm/CMakeFiles/nd_nvdimm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
