file(REMOVE_RECURSE
  "CMakeFiles/fig12b_mem_interference.dir/fig12b_mem_interference.cpp.o"
  "CMakeFiles/fig12b_mem_interference.dir/fig12b_mem_interference.cpp.o.d"
  "fig12b_mem_interference"
  "fig12b_mem_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_mem_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
