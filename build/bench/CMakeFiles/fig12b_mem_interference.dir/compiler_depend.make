# Empty compiler generated dependencies file for fig12b_mem_interference.
# This may be replaced when dependencies are built.
