# Empty compiler generated dependencies file for ablation_ncache.
# This may be replaced when dependencies are built.
