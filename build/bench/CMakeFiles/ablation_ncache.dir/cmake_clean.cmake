file(REMOVE_RECURSE
  "CMakeFiles/ablation_ncache.dir/ablation_ncache.cpp.o"
  "CMakeFiles/ablation_ncache.dir/ablation_ncache.cpp.o.d"
  "ablation_ncache"
  "ablation_ncache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ncache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
