# Empty dependencies file for nfv_forwarder.
# This may be replaced when dependencies are built.
