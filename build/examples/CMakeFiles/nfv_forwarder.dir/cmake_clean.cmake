file(REMOVE_RECURSE
  "CMakeFiles/nfv_forwarder.dir/nfv_forwarder.cpp.o"
  "CMakeFiles/nfv_forwarder.dir/nfv_forwarder.cpp.o.d"
  "nfv_forwarder"
  "nfv_forwarder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_forwarder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
