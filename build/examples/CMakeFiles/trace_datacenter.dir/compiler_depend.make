# Empty compiler generated dependencies file for trace_datacenter.
# This may be replaced when dependencies are built.
