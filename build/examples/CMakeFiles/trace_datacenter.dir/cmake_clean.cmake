file(REMOVE_RECURSE
  "CMakeFiles/trace_datacenter.dir/trace_datacenter.cpp.o"
  "CMakeFiles/trace_datacenter.dir/trace_datacenter.cpp.o.d"
  "trace_datacenter"
  "trace_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
