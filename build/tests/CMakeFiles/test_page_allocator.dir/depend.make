# Empty dependencies file for test_page_allocator.
# This may be replaced when dependencies are built.
