file(REMOVE_RECURSE
  "CMakeFiles/test_page_allocator.dir/test_page_allocator.cpp.o"
  "CMakeFiles/test_page_allocator.dir/test_page_allocator.cpp.o.d"
  "test_page_allocator"
  "test_page_allocator.pdb"
  "test_page_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
