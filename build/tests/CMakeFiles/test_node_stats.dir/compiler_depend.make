# Empty compiler generated dependencies file for test_node_stats.
# This may be replaced when dependencies are built.
