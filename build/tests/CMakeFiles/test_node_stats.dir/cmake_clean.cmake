file(REMOVE_RECURSE
  "CMakeFiles/test_node_stats.dir/test_node_stats.cpp.o"
  "CMakeFiles/test_node_stats.dir/test_node_stats.cpp.o.d"
  "test_node_stats"
  "test_node_stats.pdb"
  "test_node_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
