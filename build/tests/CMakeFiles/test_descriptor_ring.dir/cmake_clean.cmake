file(REMOVE_RECURSE
  "CMakeFiles/test_descriptor_ring.dir/test_descriptor_ring.cpp.o"
  "CMakeFiles/test_descriptor_ring.dir/test_descriptor_ring.cpp.o.d"
  "test_descriptor_ring"
  "test_descriptor_ring.pdb"
  "test_descriptor_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_descriptor_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
