# Empty compiler generated dependencies file for test_descriptor_ring.
# This may be replaced when dependencies are built.
