# Empty dependencies file for test_alloc_cache.
# This may be replaced when dependencies are built.
