file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_cache.dir/test_alloc_cache.cpp.o"
  "CMakeFiles/test_alloc_cache.dir/test_alloc_cache.cpp.o.d"
  "test_alloc_cache"
  "test_alloc_cache.pdb"
  "test_alloc_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
