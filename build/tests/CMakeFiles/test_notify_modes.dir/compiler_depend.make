# Empty compiler generated dependencies file for test_notify_modes.
# This may be replaced when dependencies are built.
