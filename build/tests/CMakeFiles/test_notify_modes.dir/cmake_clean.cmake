file(REMOVE_RECURSE
  "CMakeFiles/test_notify_modes.dir/test_notify_modes.cpp.o"
  "CMakeFiles/test_notify_modes.dir/test_notify_modes.cpp.o.d"
  "test_notify_modes"
  "test_notify_modes.pdb"
  "test_notify_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_notify_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
