file(REMOVE_RECURSE
  "CMakeFiles/test_link_switch.dir/test_link_switch.cpp.o"
  "CMakeFiles/test_link_switch.dir/test_link_switch.cpp.o.d"
  "test_link_switch"
  "test_link_switch.pdb"
  "test_link_switch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
