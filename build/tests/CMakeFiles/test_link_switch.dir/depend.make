# Empty dependencies file for test_link_switch.
# This may be replaced when dependencies are built.
