file(REMOVE_RECURSE
  "CMakeFiles/test_netdimm_device.dir/test_netdimm_device.cpp.o"
  "CMakeFiles/test_netdimm_device.dir/test_netdimm_device.cpp.o.d"
  "test_netdimm_device"
  "test_netdimm_device.pdb"
  "test_netdimm_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netdimm_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
