# Empty compiler generated dependencies file for test_netdimm_device.
# This may be replaced when dependencies are built.
