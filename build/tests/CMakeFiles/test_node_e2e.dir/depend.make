# Empty dependencies file for test_node_e2e.
# This may be replaced when dependencies are built.
