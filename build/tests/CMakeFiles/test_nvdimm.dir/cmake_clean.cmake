file(REMOVE_RECURSE
  "CMakeFiles/test_nvdimm.dir/test_nvdimm.cpp.o"
  "CMakeFiles/test_nvdimm.dir/test_nvdimm.cpp.o.d"
  "test_nvdimm"
  "test_nvdimm.pdb"
  "test_nvdimm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvdimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
