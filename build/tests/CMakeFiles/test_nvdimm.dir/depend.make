# Empty dependencies file for test_nvdimm.
# This may be replaced when dependencies are built.
