file(REMOVE_RECURSE
  "CMakeFiles/test_multi_netdimm.dir/test_multi_netdimm.cpp.o"
  "CMakeFiles/test_multi_netdimm.dir/test_multi_netdimm.cpp.o.d"
  "test_multi_netdimm"
  "test_multi_netdimm.pdb"
  "test_multi_netdimm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_netdimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
