# Empty dependencies file for test_multi_netdimm.
# This may be replaced when dependencies are built.
