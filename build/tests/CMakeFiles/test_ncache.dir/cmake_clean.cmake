file(REMOVE_RECURSE
  "CMakeFiles/test_ncache.dir/test_ncache.cpp.o"
  "CMakeFiles/test_ncache.dir/test_ncache.cpp.o.d"
  "test_ncache"
  "test_ncache.pdb"
  "test_ncache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ncache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
