# Empty compiler generated dependencies file for test_ncache.
# This may be replaced when dependencies are built.
