file(REMOVE_RECURSE
  "CMakeFiles/test_rowclone.dir/test_rowclone.cpp.o"
  "CMakeFiles/test_rowclone.dir/test_rowclone.cpp.o.d"
  "test_rowclone"
  "test_rowclone.pdb"
  "test_rowclone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rowclone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
