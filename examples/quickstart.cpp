/**
 * @file
 * Quickstart: build two servers, connect them with 40GbE, and compare
 * the one-way packet latency of a PCIe NIC, an integrated NIC, and
 * NetDIMM -- the paper's headline experiment in ~40 lines of API use.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "sim/SystemConfig.hh"
#include "workload/LatencyHarness.hh"

using namespace netdimm;

int
main()
{
    setQuiet(true);
    SystemConfig base; // Table 1 defaults

    std::printf("One-way latency, two directly connected servers "
                "(40GbE)\n");
    std::printf("%-8s %10s %10s %10s %12s\n", "bytes", "dNIC(us)",
                "iNIC(us)", "NetDIMM(us)", "NetDIMM gain");

    for (std::uint32_t bytes : {64u, 256u, 1024u, 1460u}) {
        PingResult dnic =
            LatencyHarness(base, NicKind::Discrete).run(bytes);
        PingResult inic =
            LatencyHarness(base, NicKind::Integrated).run(bytes);
        PingResult nd =
            LatencyHarness(base, NicKind::NetDimm).run(bytes);
        std::printf("%-8u %10.3f %10.3f %10.3f %10.1f%%\n", bytes,
                    dnic.totalUs, inic.totalUs, nd.totalUs,
                    100.0 * (1.0 - nd.totalUs / dnic.totalUs));
    }
    return 0;
}
