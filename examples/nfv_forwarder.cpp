/**
 * @file
 * NFV middlebox example: a node runs an L3 forwarder or a deep
 * packet inspector over a stream of datacenter traffic while a
 * latency-sensitive application shares its memory system -- the
 * Sec. 5.3 scenario, runnable as a small standalone program.
 *
 *   $ ./examples/nfv_forwarder [l3f|dpi] [gbps]
 */

#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "net/Switch.hh"
#include "workload/MemLatencyProbe.hh"
#include "workload/NfHarness.hh"
#include "workload/TraceGen.hh"

using namespace netdimm;

int
main(int argc, char **argv)
{
    setQuiet(true);
    NfKind nf = NfKind::L3Forward;
    if (argc > 1 && std::strcmp(argv[1], "dpi") == 0)
        nf = NfKind::DeepInspect;
    double gbps = argc > 2 ? std::atof(argv[2]) : 24.0;
    const int npackets = 2000;

    std::printf("NFV middlebox: %s at ~%.0f Gbps of webserver-mix "
                "traffic\n\n",
                nfKindName(nf), gbps);
    std::printf("%-10s %16s %18s %16s\n", "NIC", "fwd latency(ns)",
                "co-runner mem(ns)", "packets fwd");

    for (NicKind kind : {NicKind::Integrated, NicKind::NetDimm}) {
        SystemConfig cfg;
        cfg.nic = kind;

        EventQueue eq;
        Node gen(eq, "gen", cfg, 0);
        Node mbox(eq, "mbox", cfg, 1);
        ClosFabric fabric(eq, "fabric", cfg.eth);
        fabric.attach(0, gen.endpoint());
        fabric.attach(1, mbox.endpoint());
        gen.setWire([&](const PacketPtr &p) { fabric.deliver(p); });
        mbox.setWire([&](const PacketPtr &p) { fabric.deliver(p); });

        NfHarness harness(eq, "nf", mbox, nf);
        MemLatencyProbe probe(eq, "probe", mbox, nsToTicks(20));
        probe.warmUp();
        probe.start();
        Tick traffic_start = usToTicks(150);
        eq.schedule(traffic_start, [&probe] { probe.resetStats(); });

        TraceGen tg(ClusterType::Webserver, gbps, 99);
        Tick t = traffic_start;
        for (int i = 0; i < npackets; ++i) {
            TraceRecord rec = tg.next();
            t += rec.interArrival;
            eq.schedule(t, [&gen, &mbox, rec, i] {
                gen.sendPacket(gen.makeTxPacket(rec.bytes, mbox.id(),
                                                1 + (i % 8)));
            });
        }
        eq.run(t + usToTicks(50));

        std::printf("%-10s %16.1f %18.1f %16llu\n", nicKindName(kind),
                    harness.meanProcessNs(), probe.meanLatencyNs(),
                    (unsigned long long)harness.forwarded());
    }

    std::printf("\nWith L3F the NetDIMM middlebox serves headers from "
                "nCache and never moves\npayloads across the host "
                "memory channel; with DPI it must, and the co-running\n"
                "application feels it -- the two ends of the Fig. "
                "12(b) spectrum.\n");
    return 0;
}
