/**
 * @file
 * In-memory key-value store example (the "ultra-low latency
 * application" class the paper's introduction motivates: in-memory
 * caching, financial trading).
 *
 * A client node issues GET requests (64B) to a server node that
 * answers with the value (configurable size, default 256B). The
 * round-trip time is the metric such services live and die by; the
 * example reports mean and tail RTT for dNIC, iNIC and NetDIMM
 * servers, plus the request rate a closed-loop client achieves.
 *
 *   $ ./examples/kv_server [value_bytes]
 */

#include <cstdio>
#include <cstdlib>

#include "net/Link.hh"
#include "kernel/Node.hh"

using namespace netdimm;

namespace
{

struct KvResult
{
    double meanUs;
    double p99Us;
    double kops;
};

KvResult
runKv(NicKind kind, std::uint32_t value_bytes, int requests)
{
    SystemConfig cfg;
    cfg.nic = kind;

    EventQueue eq;
    Node client(eq, "client", cfg, 0);
    Node server(eq, "server", cfg, 1);
    EthLink link(eq, "link", cfg.eth);
    link.connect(client.endpoint(), server.endpoint());
    client.connectTo(link);
    server.connectTo(link);

    stats::Quantile rtt;
    int done = 0;
    Tick issue_at = 0;
    Tick last_response = 0;
    const int warmup = 8;

    // Server: every GET is answered with the value.
    server.setReceiveHandler([&](const PacketPtr &req, Tick) {
        PacketPtr resp = server.makeTxPacket(value_bytes,
                                             client.id(), req->flowId);
        server.sendPacket(resp);
    });

    // Closed-loop client: next GET when the response lands.
    std::function<void()> issue = [&] {
        if (done >= requests + warmup)
            return;
        issue_at = eq.curTick();
        client.sendPacket(client.makeTxPacket(64, server.id(), 5));
    };
    client.setReceiveHandler([&](const PacketPtr &, Tick t) {
        if (done++ >= warmup)
            rtt.sample(ticksToUs(t - issue_at));
        last_response = t;
        issue();
    });

    Tick start = eq.curTick();
    issue();
    eq.run();

    KvResult r;
    r.meanUs = rtt.mean();
    r.p99Us = rtt.percentile(0.99);
    double secs = ticksToSec(last_response - start);
    r.kops = double(requests + warmup) / secs / 1e3;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::uint32_t value_bytes =
        argc > 1 ? std::uint32_t(std::atoi(argv[1])) : 256;
    const int requests = 300;

    std::printf("Key-value store: closed-loop GETs (64B request, %uB "
                "value)\n\n",
                value_bytes);
    std::printf("%-10s %12s %12s %14s\n", "server", "mean RTT(us)",
                "p99 RTT(us)", "rate (kops/s)");
    for (NicKind kind : {NicKind::Discrete, NicKind::Integrated,
                         NicKind::NetDimm}) {
        KvResult r = runKv(kind, value_bytes, requests);
        std::printf("%-10s %12.3f %12.3f %14.1f\n", nicKindName(kind),
                    r.meanUs, r.p99Us, r.kops);
    }
    std::printf("\nA NetDIMM-equipped server answers a GET in roughly "
                "half the time of a\nPCIe-NIC server -- the "
                "microsecond scale the paper's intro targets.\n");
    return 0;
}
