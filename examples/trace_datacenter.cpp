/**
 * @file
 * Datacenter trace replay example: replay one of the three cluster
 * traffic mixes between two servers across a clos fabric and print
 * the per-packet latency distribution -- a compact version of the
 * Fig. 12(a) methodology exposed as a command-line tool.
 *
 *   $ ./examples/trace_datacenter [database|webserver|hadoop] \
 *         [dnic|inic|netdimm] [switch_ns] [--stats] [--trace FILE]
 *
 * With --trace FILE the packet stream is read from a trace file
 * (format: "<arrival_ns> <bytes> <locality>", see TraceFile.hh)
 * instead of the synthetic cluster generator -- e.g. a parse of the
 * public Facebook dataset.
 */

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <iostream>
#include <map>

#include "net/Switch.hh"
#include "kernel/Node.hh"
#include "workload/TraceFile.hh"
#include "workload/TraceGen.hh"

using namespace netdimm;

int
main(int argc, char **argv)
{
    setQuiet(true);
    ClusterType cluster = ClusterType::Webserver;
    if (argc > 1) {
        if (std::strcmp(argv[1], "database") == 0)
            cluster = ClusterType::Database;
        else if (std::strcmp(argv[1], "hadoop") == 0)
            cluster = ClusterType::Hadoop;
    }
    NicKind kind = NicKind::NetDimm;
    if (argc > 2) {
        if (std::strcmp(argv[2], "dnic") == 0)
            kind = NicKind::Discrete;
        else if (std::strcmp(argv[2], "inic") == 0)
            kind = NicKind::Integrated;
    }
    double switch_ns = argc > 3 ? std::atof(argv[3]) : 100.0;
    const int npackets = 1200;

    SystemConfig cfg;
    cfg.nic = kind;
    cfg.eth.switchLatency = nsToTicks(switch_ns);

    EventQueue eq;
    Node tx(eq, "tx", cfg, 0);
    Node rx(eq, "rx", cfg, 1);
    ClosFabric fabric(eq, "fabric", cfg.eth);
    fabric.attach(0, tx.endpoint());
    fabric.attach(1, rx.endpoint());

    std::map<std::uint64_t, TrafficLocality> locality;
    tx.setWire([&](const PacketPtr &pkt) {
        auto it = locality.find(pkt->id);
        TrafficLocality loc = it == locality.end()
                                  ? TrafficLocality::IntraCluster
                                  : it->second;
        fabric.forward(pkt, loc);
    });
    rx.setWire(
        [&](const PacketPtr &pkt) { fabric.deliver(pkt); });

    stats::Quantile lat;
    rx.setReceiveHandler([&](const PacketPtr &pkt, Tick) {
        lat.sample(ticksToUs(pkt->oneWayLatency()));
    });

    // Packet stream: a trace file if given, else synthesized from
    // the cluster's published distributions.
    std::vector<TraceRecord> records;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0)
            records = TraceFile::load(argv[i + 1]);
    }
    if (records.empty()) {
        TraceGen gen(cluster, 5.0, 2026);
        records = TraceFile::synthesize(gen, npackets);
    }

    Tick t = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const TraceRecord &rec = records[i];
        t += rec.interArrival;
        eq.schedule(t, [&, rec, i] {
            PacketPtr pkt =
                tx.makeTxPacket(rec.bytes, rx.id(), 1 + (i % 8));
            locality[pkt->id] = rec.locality;
            tx.sendPacket(pkt);
        });
    }
    eq.run();

    std::printf("cluster=%s nic=%s switch=%.0fns packets=%llu\n\n",
                clusterName(cluster), nicKindName(kind), switch_ns,
                (unsigned long long)lat.count());
    std::printf("one-way latency  mean %7.3f us\n", lat.mean());
    std::printf("                 p50  %7.3f us\n", lat.percentile(0.5));
    std::printf("                 p90  %7.3f us\n", lat.percentile(0.9));
    std::printf("                 p99  %7.3f us\n",
                lat.percentile(0.99));
    std::printf("                 max  %7.3f us\n", lat.max());

    if (argc > 4 && std::strcmp(argv[4], "--stats") == 0) {
        std::printf("\n");
        rx.printStats(std::cout);
    }
    return 0;
}
